#include "core/database.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/general_search.h"
#include "core/iio.h"
#include "core/ir2_search.h"
#include "core/kc_tree.h"
#include "core/rtree_baseline.h"
#include "core/stats.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "rtree/node_cache.h"
#include "rtree/tree_stats.h"

namespace ir2 {

double DatasetStats::AvgBlocksPerObject() const {
  if (num_objects == 0) {
    return 0.0;
  }
  double record_bytes = static_cast<double>(object_file_bytes) /
                        static_cast<double>(num_objects);
  // A b-byte record starting at a uniform offset crosses (b - 1) / bs block
  // boundaries in expectation, touching 1 + (b - 1) / bs blocks.
  return 1.0 + (record_bytes - 1.0) / 4096.0;
}

SpatialKeywordDatabase::~SpatialKeywordDatabase() = default;

StatusOr<std::unique_ptr<SpatialKeywordDatabase>> SpatialKeywordDatabase::
    Build(std::span<const StoredObject> objects,
          const DatabaseOptions& options) {
  std::unique_ptr<SpatialKeywordDatabase> db(new SpatialKeywordDatabase());
  db->options_ = options;
  db->tokenizer_ = Tokenizer(options.stopwords);

  // 1. Object file (the paper's tab-delimited plain text file).
  db->object_device_ = std::make_unique<MemoryBlockDevice>();
  ObjectStoreWriter writer(db->object_device_.get());
  std::vector<ObjectRef> refs;
  refs.reserve(objects.size());
  for (const StoredObject& object : objects) {
    IR2_ASSIGN_OR_RETURN(ObjectRef ref, writer.Append(object));
    refs.push_back(ref);
  }
  IR2_RETURN_IF_ERROR(writer.Finish());
  // The object store reads through a pool so prefetched candidate blocks
  // have somewhere to land. Without prefetching the pool runs in bypass
  // mode (capacity 0): no caching layer, physical counts byte-identical to
  // reading the device directly.
  db->object_pool_ = std::make_unique<BufferPool>(
      db->object_device_.get(), options.prefetch ? options.pool_blocks : 0);
  db->object_store_ = std::make_unique<ObjectStore>(db->object_pool_.get(),
                                                    writer.bytes_written());

  // 2. Tokenize once; gather corpus statistics.
  std::vector<std::vector<std::string>> distinct_words(objects.size());
  std::vector<std::vector<uint64_t>> word_hashes(objects.size());
  std::vector<uint32_t> doc_lengths(objects.size());
  std::unordered_set<std::string> vocabulary;
  DatasetStats& stats = db->stats_;
  for (size_t i = 0; i < objects.size(); ++i) {
    std::vector<std::string> tokens = db->tokenizer_.Tokenize(objects[i].text);
    doc_lengths[i] = static_cast<uint32_t>(tokens.size());
    stats.total_tokens += tokens.size();
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    stats.total_distinct_words += tokens.size();
    word_hashes[i].reserve(tokens.size());
    for (const std::string& word : tokens) {
      word_hashes[i].push_back(HashWord(word));
      vocabulary.insert(word);
    }
    distinct_words[i] = std::move(tokens);
  }
  stats.num_objects = objects.size();
  stats.vocabulary_size = vocabulary.size();
  stats.object_file_bytes = writer.bytes_written();
  stats.object_file_blocks = db->object_device_->NumBlocks();

  const auto point_rect = [](const StoredObject& object) {
    return Rect::ForPoint(Point(object.coords));
  };

  // Shared bulk-load input for the signature trees.
  std::vector<Ir2Tree::BulkObject> bulk_objects;
  if (options.bulk_load) {
    bulk_objects.reserve(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      bulk_objects.push_back(Ir2Tree::BulkObject{
          refs[i], point_rect(objects[i]), word_hashes[i]});
    }
  }

  // 3. Plain R-Tree (baseline).
  if (options.build_rtree) {
    db->rtree_device_ = std::make_unique<MemoryBlockDevice>();
    db->rtree_pool_ = std::make_unique<BufferPool>(db->rtree_device_.get(),
                                                   options.pool_blocks);
    db->rtree_ = std::make_unique<RTree>(db->rtree_pool_.get(),
                                         options.tree_options);
    IR2_RETURN_IF_ERROR(db->rtree_->Init());
    if (options.bulk_load) {
      std::vector<RTreeBase::BulkItem> items;
      items.reserve(objects.size());
      for (size_t i = 0; i < objects.size(); ++i) {
        items.push_back(RTreeBase::BulkItem{refs[i], point_rect(objects[i])});
      }
      EmptyPayloadSource empty;
      IR2_RETURN_IF_ERROR(db->rtree_->BulkLoad(
          std::move(items),
          [&empty](size_t) -> const PayloadSource& { return empty; },
          options.bulk_fill_fraction));
    } else {
      for (size_t i = 0; i < objects.size(); ++i) {
        IR2_RETURN_IF_ERROR(
            db->rtree_->Insert(refs[i], point_rect(objects[i])));
      }
    }
    IR2_RETURN_IF_ERROR(db->rtree_->Flush());
    if (options.locality_placement && !options.bulk_load) {
      // Incremental splits scatter siblings; rewrite into the DFS layout
      // (bulk loads already produce it natively).
      auto device = std::make_unique<MemoryBlockDevice>();
      auto pool =
          std::make_unique<BufferPool>(device.get(), options.pool_blocks);
      auto tree = std::make_unique<RTree>(pool.get(), options.tree_options);
      IR2_RETURN_IF_ERROR(tree->Init());
      IR2_RETURN_IF_ERROR(db->rtree_->CompactInto(tree.get()));
      db->rtree_ = std::move(tree);
      db->rtree_pool_ = std::move(pool);
      db->rtree_device_ = std::move(device);
    }
  }

  // 4. IR2-Tree.
  if (options.build_ir2) {
    db->ir2_device_ = std::make_unique<MemoryBlockDevice>();
    db->ir2_pool_ = std::make_unique<BufferPool>(db->ir2_device_.get(),
                                                 options.pool_blocks);
    db->ir2_ = std::make_unique<Ir2Tree>(db->ir2_pool_.get(),
                                         options.tree_options,
                                         options.ir2_signature);
    IR2_RETURN_IF_ERROR(db->ir2_->Init());
    if (options.bulk_load) {
      IR2_RETURN_IF_ERROR(db->ir2_->BulkLoadObjects(
          bulk_objects, options.bulk_fill_fraction));
    } else {
      for (size_t i = 0; i < objects.size(); ++i) {
        IR2_RETURN_IF_ERROR(db->ir2_->InsertObject(
            refs[i], point_rect(objects[i]),
            std::span<const uint64_t>(word_hashes[i])));
      }
    }
    IR2_RETURN_IF_ERROR(db->ir2_->Flush());
    if (options.locality_placement && !options.bulk_load) {
      auto device = std::make_unique<MemoryBlockDevice>();
      auto pool =
          std::make_unique<BufferPool>(device.get(), options.pool_blocks);
      auto tree = std::make_unique<Ir2Tree>(pool.get(), options.tree_options,
                                            options.ir2_signature);
      IR2_RETURN_IF_ERROR(tree->Init());
      IR2_RETURN_IF_ERROR(db->ir2_->CompactInto(tree.get()));
      db->ir2_ = std::move(tree);
      db->ir2_pool_ = std::move(pool);
      db->ir2_device_ = std::move(device);
    }
  }

  // 5. MIR2-Tree: bulk load with deferred inner signatures, then one
  // recomputation pass (each object loaded once).
  if (options.build_mir2) {
    db->mir2_device_ = std::make_unique<MemoryBlockDevice>();
    db->mir2_pool_ = std::make_unique<BufferPool>(db->mir2_device_.get(),
                                                  options.pool_blocks);
    MultilevelScheme scheme = options.mir2_scheme;
    RTreeOptions mir2_options = options.tree_options;
    mir2_options.defer_inner_payload_maintenance = true;
    if (scheme.per_level.empty()) {
      // Derive per-level widths from the dataset statistics. The probe tree
      // is only used to compute the node capacity.
      RTree capacity_probe(db->mir2_pool_.get(), options.tree_options);
      uint32_t capacity = capacity_probe.node_capacity();
      uint32_t max_levels =
          2 + static_cast<uint32_t>(
                  std::log(std::max<double>(2.0, objects.size())) /
                  std::log(std::max(2.0, 0.7 * capacity)));
      scheme = DeriveMultilevelScheme(
          options.ir2_signature.bits, options.ir2_signature.hashes_per_word,
          stats.AvgDistinctWordsPerObject(), stats.vocabulary_size, capacity,
          /*expected_fill=*/0.7, max_levels);
    }
    db->mir2_ = std::make_unique<Mir2Tree>(
        db->mir2_pool_.get(), mir2_options, std::move(scheme),
        db->object_store_.get(), &db->tokenizer_);
    IR2_RETURN_IF_ERROR(db->mir2_->Init());
    if (options.bulk_load) {
      IR2_RETURN_IF_ERROR(db->mir2_->BulkLoadObjects(
          bulk_objects, options.bulk_fill_fraction));
    } else {
      for (size_t i = 0; i < objects.size(); ++i) {
        IR2_RETURN_IF_ERROR(db->mir2_->InsertObject(
            refs[i], point_rect(objects[i]),
            std::span<const uint64_t>(word_hashes[i])));
      }
    }
    IR2_RETURN_IF_ERROR(db->mir2_->RecomputeAllSignatures());
    IR2_RETURN_IF_ERROR(db->mir2_->Flush());
    if (options.locality_placement && !options.bulk_load) {
      // Signatures are already correct (recomputed above); the compaction
      // copies them verbatim.
      MultilevelScheme built_scheme = db->mir2_->scheme();
      auto device = std::make_unique<MemoryBlockDevice>();
      auto pool =
          std::make_unique<BufferPool>(device.get(), options.pool_blocks);
      auto tree = std::make_unique<Mir2Tree>(
          pool.get(), mir2_options, std::move(built_scheme),
          db->object_store_.get(), &db->tokenizer_);
      IR2_RETURN_IF_ERROR(tree->Init());
      IR2_RETURN_IF_ERROR(db->mir2_->CompactInto(tree.get()));
      db->mir2_ = std::move(tree);
      db->mir2_pool_ = std::move(pool);
      db->mir2_device_ = std::move(device);
    }
  }

  // 6. KC-Tree: keyword-clustered hybrid payloads — exact bitmaps for the
  // hot vocabulary (clustered by frequency tier + co-occurrence), a shared
  // cold-tail signature for everything else. Same node layout and I/O
  // engine as the other trees.
  if (options.build_kc) {
    db->kc_vocab_ = std::make_unique<KcVocabulary>(KcVocabulary::Build(
        distinct_words, options.kc_vocabulary, options.ir2_signature));
    db->kc_device_ = std::make_unique<MemoryBlockDevice>();
    db->kc_pool_ = std::make_unique<BufferPool>(db->kc_device_.get(),
                                                options.pool_blocks);
    db->kc_ = std::make_unique<KcTree>(db->kc_pool_.get(),
                                       options.tree_options,
                                       db->kc_vocab_.get());
    IR2_RETURN_IF_ERROR(db->kc_->Init());
    if (options.bulk_load) {
      std::vector<KcTree::BulkObject> kc_bulk;
      kc_bulk.reserve(objects.size());
      for (size_t i = 0; i < objects.size(); ++i) {
        kc_bulk.push_back(KcTree::BulkObject{
            refs[i], point_rect(objects[i]), word_hashes[i]});
      }
      IR2_RETURN_IF_ERROR(db->kc_->BulkLoadObjects(
          kc_bulk, options.bulk_fill_fraction));
    } else {
      for (size_t i = 0; i < objects.size(); ++i) {
        IR2_RETURN_IF_ERROR(db->kc_->InsertObject(
            refs[i], point_rect(objects[i]),
            std::span<const uint64_t>(word_hashes[i])));
      }
    }
    IR2_RETURN_IF_ERROR(db->kc_->Flush());
    if (options.locality_placement && !options.bulk_load) {
      auto device = std::make_unique<MemoryBlockDevice>();
      auto pool =
          std::make_unique<BufferPool>(device.get(), options.pool_blocks);
      auto tree = std::make_unique<KcTree>(pool.get(), options.tree_options,
                                           db->kc_vocab_.get());
      IR2_RETURN_IF_ERROR(tree->Init());
      IR2_RETURN_IF_ERROR(db->kc_->CompactInto(tree.get()));
      db->kc_ = std::move(tree);
      db->kc_pool_ = std::move(pool);
      db->kc_device_ = std::move(device);
    }
  }

  // 7. Inverted index (IIO baseline).
  if (options.build_iio) {
    db->iio_device_ = std::make_unique<MemoryBlockDevice>();
    InvertedIndexBuilder builder(db->iio_device_.get(), options.iio_options);
    for (size_t i = 0; i < objects.size(); ++i) {
      builder.AddObject(refs[i], distinct_words[i], doc_lengths[i]);
    }
    IR2_RETURN_IF_ERROR(builder.Finish());
    // Bypass pool when prefetching is off, mirroring the object store.
    db->iio_pool_ = std::make_unique<BufferPool>(
        db->iio_device_.get(), options.prefetch ? options.pool_blocks : 0);
    IR2_ASSIGN_OR_RETURN(db->iio_, InvertedIndex::Open(db->iio_pool_.get()));
  }

  db->scorer_ = std::make_unique<IrScorer>(
      CorpusStats{stats.num_objects, stats.AvgDocLen()});
  db->WireIoEngine();
  // The planner's tree-shape snapshot reads nodes; take it before the
  // stats reset so measurements start from zero.
  IR2_RETURN_IF_ERROR(db->WirePlanner());
  db->ResetIoStats();
  return db;
}

namespace {

// One tree's shape as the planner prices it. `signatures` supplies the
// per-level signature scheme ((M)IR2-Trees); null for the plain R-Tree,
// whose levels keep signature_bits == 0 (no filter, fp = 1).
StatusOr<PlannerTreeShape> SnapshotTreeShape(const RTreeBase& tree,
                                             const Ir2Tree* signatures) {
  IR2_ASSIGN_OR_RETURN(TreeStatsReport report, ComputeTreeStats(tree));
  PlannerTreeShape shape;
  shape.levels.reserve(report.levels.size());
  for (const LevelStats& level : report.levels) {
    PlannerLevel out;
    out.nodes = level.nodes;
    out.entries = level.entries;
    out.blocks_per_node =
        level.nodes == 0 ? 1.0
                         : static_cast<double>(level.blocks_used) /
                               static_cast<double>(level.nodes);
    if (signatures != nullptr) {
      const SignatureConfig config = signatures->LevelConfig(level.level);
      out.signature_bits = config.bits;
      out.hashes_per_word = config.hashes_per_word;
      out.payload_density = level.PayloadDensity();
    }
    shape.levels.push_back(out);
  }
  return shape;
}

}  // namespace

Status SpatialKeywordDatabase::WirePlanner() {
  if (!options_.build_planner) {
    return Status::Ok();
  }
  PlannerInputs inputs;
  inputs.num_objects = stats_.num_objects;
  inputs.avg_blocks_per_object = std::max(stats_.AvgBlocksPerObject(), 1.0);
  inputs.object_file_blocks = stats_.object_file_blocks;
  inputs.iio_present = iio_ != nullptr;
  inputs.disk_model = options_.disk_model;
  inputs.block_size = object_device_->block_size();
  if (rtree_ != nullptr) {
    IR2_ASSIGN_OR_RETURN(inputs.rtree, SnapshotTreeShape(*rtree_, nullptr));
  }
  if (ir2_ != nullptr) {
    IR2_ASSIGN_OR_RETURN(inputs.ir2, SnapshotTreeShape(*ir2_, ir2_.get()));
  }
  if (mir2_ != nullptr) {
    IR2_ASSIGN_OR_RETURN(inputs.mir2, SnapshotTreeShape(*mir2_, mir2_.get()));
  }
  if (kc_ != nullptr && kc_vocab_ != nullptr) {
    // The KC payload is not an Ir2Tree signature scheme, so snapshot its
    // shape directly: signature_bits spans the whole payload (hot bitmap +
    // cold tail) and payload_density measures set bits over that span —
    // exactly the quantities KcCost's synthetic cold level is derived from.
    IR2_ASSIGN_OR_RETURN(TreeStatsReport kc_report, ComputeTreeStats(*kc_));
    PlannerTreeShape shape;
    shape.levels.reserve(kc_report.levels.size());
    const uint32_t payload_bits =
        static_cast<uint32_t>(kc_vocab_->payload_bytes()) * 8;
    for (const LevelStats& level : kc_report.levels) {
      PlannerLevel out;
      out.nodes = level.nodes;
      out.entries = level.entries;
      out.blocks_per_node =
          level.nodes == 0 ? 1.0
                           : static_cast<double>(level.blocks_used) /
                                 static_cast<double>(level.nodes);
      out.signature_bits = payload_bits;
      out.hashes_per_word = kc_vocab_->cold_config().hashes_per_word;
      out.payload_density = level.PayloadDensity();
      shape.levels.push_back(out);
    }
    inputs.kc = std::move(shape);
    inputs.kc_hot_bits = kc_vocab_->hot_bits();
    inputs.kc_cold_bits = kc_vocab_->cold_config().bits;
    inputs.kc_cold_hashes = kc_vocab_->cold_config().hashes_per_word;
    inputs.kc_hot_word_dfs.reserve(kc_vocab_->words().size());
    for (const KcVocabulary::Word& word : kc_vocab_->words()) {
      inputs.kc_hot_word_dfs.emplace_back(word.hash, word.df);
    }
    std::sort(inputs.kc_hot_word_dfs.begin(), inputs.kc_hot_word_dfs.end());
  }
  planner_ = std::make_unique<QueryPlanner>(std::move(inputs), iio_.get(),
                                            &tokenizer_);
  return Status::Ok();
}

void SpatialKeywordDatabase::WireIoEngine() {
  // Schedulers may hold pointers into async_backends_; tear them down first
  // if this is ever re-run.
  object_scheduler_.reset();
  rtree_scheduler_.reset();
  ir2_scheduler_.reset();
  mir2_scheduler_.reset();
  kc_scheduler_.reset();
  iio_scheduler_.reset();
  async_backends_.clear();
  const auto make_scheduler =
      [this](BufferPool* pool) -> std::unique_ptr<IoScheduler> {
    if (pool == nullptr) {
      return nullptr;
    }
    auto scheduler = std::make_unique<IoScheduler>(pool, options_.scheduler);
    if (options_.async_io_threads > 0) {
      AsyncIoOptions async_options;
      async_options.num_threads = options_.async_io_threads;
      async_backends_.push_back(
          std::make_unique<AsyncIoBackend>(pool, async_options));
      scheduler->SetAsyncBackend(async_backends_.back().get());
    }
    return scheduler;
  };
  object_scheduler_ = make_scheduler(object_pool_.get());
  rtree_scheduler_ = make_scheduler(rtree_pool_.get());
  ir2_scheduler_ = make_scheduler(ir2_pool_.get());
  mir2_scheduler_ = make_scheduler(mir2_pool_.get());
  kc_scheduler_ = make_scheduler(kc_pool_.get());
  iio_scheduler_ = make_scheduler(iio_pool_.get());
  if (iio_ != nullptr && iio_scheduler_ != nullptr) {
    // Posting lists always stream through the scheduler's ReadRun path —
    // the identical block sequence as direct reads, so this is safe to
    // wire unconditionally (prefetch on or off).
    iio_->SetScheduler(iio_scheduler_.get());
  }
}

Status SpatialKeywordDatabase::DropCaches() {
  // Let in-flight speculation finish first so a racing prefetch cannot
  // re-populate a pool between the Clear and the next query.
  DrainSchedulers();
  for (BufferPool* pool :
       {object_pool_.get(), rtree_pool_.get(), ir2_pool_.get(),
        mir2_pool_.get(), kc_pool_.get(), iio_pool_.get()}) {
    if (pool != nullptr) {
      IR2_RETURN_IF_ERROR(pool->Clear());
    }
  }
  // A decoded-node cache attached to a tree would also short-circuit cold
  // reads; drop it so cold_queries keeps its per-query purity.
  for (RTreeBase* tree : {static_cast<RTreeBase*>(rtree_.get()),
                          static_cast<RTreeBase*>(ir2_.get()),
                          static_cast<RTreeBase*>(mir2_.get()),
                          static_cast<RTreeBase*>(kc_.get())}) {
    if (tree != nullptr && tree->node_cache() != nullptr) {
      tree->node_cache()->Clear();
    }
  }
  return Status::Ok();
}

void SpatialKeywordDatabase::ResetIoStats() {
  // Pools cascade to their backing devices; the device loop covers any
  // device not behind a pool.
  for (BufferPool* pool :
       {object_pool_.get(), rtree_pool_.get(), ir2_pool_.get(),
        mir2_pool_.get(), kc_pool_.get(), iio_pool_.get()}) {
    if (pool != nullptr) {
      pool->ResetStats();
    }
  }
  for (BlockDevice* device :
       {object_device_.get(), rtree_device_.get(), ir2_device_.get(),
        mir2_device_.get(), kc_device_.get(), iio_device_.get()}) {
    if (device != nullptr) {
      device->ResetStats();
    }
  }
  for (IoScheduler* scheduler :
       {object_scheduler_.get(), rtree_scheduler_.get(), ir2_scheduler_.get(),
        mir2_scheduler_.get(), kc_scheduler_.get(), iio_scheduler_.get()}) {
    if (scheduler != nullptr) {
      scheduler->ResetStats();
    }
  }
}

IoStats SpatialKeywordDatabase::PoolThreadIo() const {
  IoStats total;
  for (const BufferPool* pool :
       {object_pool_.get(), rtree_pool_.get(), ir2_pool_.get(),
        mir2_pool_.get(), kc_pool_.get(), iio_pool_.get()}) {
    if (pool != nullptr) {
      total += pool->thread_stats();
    }
  }
  return total;
}

IoStats SpatialKeywordDatabase::DeviceThreadIo() const {
  IoStats total;
  for (const BlockDevice* device :
       {object_device_.get(), rtree_device_.get(), ir2_device_.get(),
        mir2_device_.get(), kc_device_.get(), iio_device_.get()}) {
    if (device != nullptr) {
      total += device->thread_stats();
    }
  }
  return total;
}

IoStats SpatialKeywordDatabase::SchedulerIo() const {
  IoStats total;
  for (const IoScheduler* scheduler :
       {object_scheduler_.get(), rtree_scheduler_.get(), ir2_scheduler_.get(),
        mir2_scheduler_.get(), kc_scheduler_.get(), iio_scheduler_.get()}) {
    if (scheduler != nullptr) {
      total += scheduler->speculative_stats();
    }
  }
  return total;
}

void SpatialKeywordDatabase::DrainSchedulers() {
  for (IoScheduler* scheduler :
       {object_scheduler_.get(), rtree_scheduler_.get(), ir2_scheduler_.get(),
        mir2_scheduler_.get(), kc_scheduler_.get(), iio_scheduler_.get()}) {
    if (scheduler != nullptr) {
      scheduler->Drain();
    }
  }
}

void SpatialKeywordDatabase::MaybeSweepObjectFile(
    const DistanceFirstQuery& q) {
  if (!options_.prefetch || object_scheduler_ == nullptr || q.k == 0) {
    return;
  }
  const uint64_t blocks = object_pool_->NumBlocks();
  if (blocks == 0) {
    return;
  }
  const DiskModel model(options_.disk_model, object_pool_->block_size());
  const double sweep_ms =
      model.RandomAccessMs() +
      static_cast<double>(blocks - 1) * model.SequentialAccessMs();
  // A distance-first top-k query keeps loading candidates until k of them
  // pass keyword verification, so it performs about k / p object loads —
  // each one a seek — where p is the selectivity of the keyword
  // conjunction (core/stats.h, the same estimate the planner prices
  // traversals with). The inverted index's in-memory dictionary prices p
  // from document frequencies without any I/O. Without the IIO the
  // estimate degrades to the bare lower bound of k loads.
  double expected_loads = static_cast<double>(q.k);
  if (iio_ != nullptr && stats_.num_objects > 0) {
    const std::vector<std::string> keywords =
        tokenizer_.NormalizeKeywords(q.keywords);
    const ConjunctionEstimate estimate =
        EstimateConjunction(*iio_, keywords, stats_.num_objects);
    expected_loads =
        ExpectedVerificationLoads(estimate.selectivity, q.k,
                                  stats_.num_objects);
  }
  const double seek_ms = expected_loads * model.RandomAccessMs();
  if (sweep_ms < seek_ms) {
    object_scheduler_->PrefetchRange(0, static_cast<uint32_t>(
                                            std::min<uint64_t>(blocks, ~0u)));
  }
}

IoStats SpatialKeywordDatabase::AggregateIo() const {
  IoStats total;
  for (const BlockDevice* device :
       {object_device_.get(), rtree_device_.get(), ir2_device_.get(),
        mir2_device_.get(), kc_device_.get(), iio_device_.get()}) {
    if (device != nullptr) {
      total += device->stats();
    }
  }
  return total;
}

template <typename Fn>
StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::RunQuery(
    QueryStats* stats, Fn&& fn) {
  if (options_.cold_queries) {
    IR2_RETURN_IF_ERROR(DropCaches());
  }
  // Three-way diff, all per-thread so concurrent work cannot bleed in:
  //   pools      -> demand_io       (logical requests by this thread)
  //   devices    -> io              (physical reads by this thread)
  //   schedulers -> speculative_io  (physical reads by prefetch threads)
  // With prefetching off the schedulers stay idle and the bypass pools add
  // nothing, so io reproduces the historical device-diff values exactly.
  const IoStats demand_before = PoolThreadIo();
  const IoStats physical_before = DeviceThreadIo();
  const IoStats speculative_before = SchedulerIo();
  // One kQuery span per query (covering the algorithm and the drain);
  // free when no tracer is installed.
  obs::TraceSpan query_span(obs::SpanKind::kQuery);
  Stopwatch watch;
  QueryStats local;
  IR2_ASSIGN_OR_RETURN(std::vector<QueryResult> results, fn(&local));
  if (options_.prefetch) {
    // Speculation issued on this query's behalf settles before accounting
    // (and before a next query's DropCaches could discard it half-done).
    DrainSchedulers();
  }
  local.seconds = watch.ElapsedSeconds();
  local.io = DeviceThreadIo() - physical_before;
  local.demand_io = PoolThreadIo() - demand_before;
  local.speculative_io = SchedulerIo() - speculative_before;
  const DiskModel model(options_.disk_model);
  local.simulated_disk_ms =
      model.Ms(local.io) + model.Ms(local.speculative_io);
  const obs::CoreMetrics& metrics = obs::DefaultMetrics();
  metrics.queries_total->Add();
  metrics.query_latency_ms->Record(local.seconds * 1000.0);
  metrics.query_sim_disk_ms->Record(local.simulated_disk_ms);
  metrics.query_demand_blocks->Record(
      static_cast<double>(local.demand_io.TotalReads()));
  if (stats != nullptr) {
    *stats += local;
  }
  return results;
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryRTree(
    const DistanceFirstQuery& q, QueryStats* stats) {
  if (rtree_ == nullptr) {
    return Status::FailedPrecondition("R-Tree was not built");
  }
  NNPrefetchOptions prefetch;
  if (options_.prefetch) {
    prefetch.node_scheduler = rtree_scheduler_.get();
    if (options_.prefetch_objects) {
      prefetch.object_scheduler = object_scheduler_.get();
    }
  }
  return RunQuery(stats, [&](QueryStats* local) {
    MaybeSweepObjectFile(q);
    return RTreeTopK(*rtree_, *object_store_, tokenizer_, q, local, prefetch);
  });
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryIio(
    const DistanceFirstQuery& q, QueryStats* stats) {
  if (iio_ == nullptr) {
    return Status::FailedPrecondition("Inverted index was not built");
  }
  return RunQuery(stats, [&](QueryStats* local) {
    return IioTopK(*iio_, *object_store_, tokenizer_, q, local,
                   options_.prefetch ? object_scheduler_.get() : nullptr);
  });
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryIr2(
    const DistanceFirstQuery& q, QueryStats* stats) {
  if (ir2_ == nullptr) {
    return Status::FailedPrecondition("IR2-Tree was not built");
  }
  NNPrefetchOptions prefetch;
  if (options_.prefetch) {
    prefetch.node_scheduler = ir2_scheduler_.get();
    if (options_.prefetch_objects) {
      prefetch.object_scheduler = object_scheduler_.get();
    }
  }
  return RunQuery(stats, [&](QueryStats* local) {
    MaybeSweepObjectFile(q);
    return Ir2TopK(*ir2_, *object_store_, tokenizer_, q, local,
                   /*scratch=*/nullptr, prefetch);
  });
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryMir2(
    const DistanceFirstQuery& q, QueryStats* stats) {
  if (mir2_ == nullptr) {
    return Status::FailedPrecondition("MIR2-Tree was not built");
  }
  NNPrefetchOptions prefetch;
  if (options_.prefetch) {
    prefetch.node_scheduler = mir2_scheduler_.get();
    if (options_.prefetch_objects) {
      prefetch.object_scheduler = object_scheduler_.get();
    }
  }
  return RunQuery(stats, [&](QueryStats* local) {
    MaybeSweepObjectFile(q);
    return Ir2TopK(*mir2_, *object_store_, tokenizer_, q, local,
                   /*scratch=*/nullptr, prefetch);
  });
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryKc(
    const DistanceFirstQuery& q, QueryStats* stats) {
  if (kc_ == nullptr) {
    return Status::FailedPrecondition("KC-Tree was not built");
  }
  NNPrefetchOptions prefetch;
  if (options_.prefetch) {
    prefetch.node_scheduler = kc_scheduler_.get();
    if (options_.prefetch_objects) {
      prefetch.object_scheduler = object_scheduler_.get();
    }
  }
  return RunQuery(stats, [&](QueryStats* local) {
    MaybeSweepObjectFile(q);
    return KcTopK(*kc_, *object_store_, tokenizer_, q, local,
                  /*scratch=*/nullptr, prefetch);
  });
}

uint64_t SpatialKeywordDatabase::MutationEpoch() const {
  uint64_t epoch = 0;
  if (rtree_ != nullptr) epoch += rtree_->version();
  if (ir2_ != nullptr) epoch += ir2_->version();
  if (mir2_ != nullptr) epoch += mir2_->version();
  if (kc_ != nullptr) epoch += kc_->version();
  return epoch;
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryAuto(
    const DistanceFirstQuery& q, QueryStats* stats, QueryPlan* plan_out) {
  return QueryAutoCached(q, stats, plan_out, /*check_out=*/nullptr);
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryAutoCached(
    const DistanceFirstQuery& q, QueryStats* stats, QueryPlan* plan_out,
    CacheReuseCheck* check_out) {
  // Only plain point top-k queries are cacheable: an area target has no
  // single center for the triangle-inequality ball, and a max_distance
  // bound can truncate the over-fetch below K, which would record a radius
  // the entry does not actually cover.
  if (result_cache_ == nullptr || q.area.has_value() ||
      q.max_distance.has_value() || q.k == 0) {
    return QueryAutoPlanned(q, stats, plan_out);
  }
  // One canonical keyword form for the cache key and the executed query.
  // NormalizeKeywords is idempotent, so the algorithms' own normalization
  // of the rewritten query is a no-op.
  DistanceFirstQuery canonical = q;
  canonical.keywords = tokenizer_.NormalizeKeywords(q.keywords);
  const uint64_t epoch = MutationEpoch();
  CacheReuseCheck check;
  std::vector<QueryResult> cached;
  if (result_cache_->TryServe(canonical, epoch, &cached, &check)) {
    if (stats != nullptr) {
      if (check.exact || check.exhaustive) {
        ++stats->result_cache_hits;
      } else {
        ++stats->result_cache_near_hits;
      }
    }
    if (check_out != nullptr) *check_out = check;
    if (plan_out != nullptr) *plan_out = QueryPlan{};  // Nothing planned.
    return cached;
  }
  if (stats != nullptr) {
    ++stats->result_cache_misses;
    if (check.stale) ++stats->result_cache_invalidations;
  }
  if (check_out != nullptr) *check_out = check;
  const uint32_t fetch_k = result_cache_->OverfetchK(canonical);
  if (fetch_k <= canonical.k) {
    // Admission declined (keyword set too cold): plain planned query.
    return QueryAutoPlanned(canonical, stats, plan_out);
  }
  // Over-fetch: run the same planned path with k = K. The distance-ordered
  // algorithms produce a deterministic result stream, so the first q.k of
  // the top-K are exactly the plain top-k answer — truncation loses
  // nothing but fills the cache with a reusable ball.
  DistanceFirstQuery overfetch = canonical;
  overfetch.k = fetch_k;
  auto fetched = QueryAutoPlanned(overfetch, stats, plan_out);
  IR2_RETURN_IF_ERROR(fetched.status());
  result_cache_->Admit(canonical, fetch_k, epoch, fetched.value());
  std::vector<QueryResult> top = std::move(fetched).value();
  if (top.size() > canonical.k) top.resize(canonical.k);
  return top;
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryAutoPlanned(
    const DistanceFirstQuery& q, QueryStats* stats, QueryPlan* plan_out) {
  if (planner_ == nullptr) {
    return Status::FailedPrecondition("Planner was not built");
  }
  // Planning is pure in-memory arithmetic (pinned by
  // cold_regime_regression_test), so the executed query's disk profile is
  // exactly what a direct call to the chosen algorithm would produce.
  const QueryPlan plan = planner_->Plan(q);
  if (plan_out != nullptr) {
    *plan_out = plan;
  }
  if (!plan.has_choice) {
    return Status::FailedPrecondition(
        "No structure available to answer the query");
  }
  QueryStats local;
  StatusOr<std::vector<QueryResult>> results(std::vector<QueryResult>{});
  switch (plan.chosen) {
    case Algorithm::kRTree:
      results = QueryRTree(q, &local);
      break;
    case Algorithm::kIio:
      results = QueryIio(q, &local);
      break;
    case Algorithm::kIr2:
      results = QueryIr2(q, &local);
      break;
    case Algorithm::kMir2:
      results = QueryMir2(q, &local);
      break;
    case Algorithm::kKcTree:
      results = QueryKc(q, &local);
      break;
    case Algorithm::kAuto:
      return Status::Internal("Planner chose kAuto");
  }
  IR2_RETURN_IF_ERROR(results.status());
  planner_->RecordOutcome(plan, local.simulated_disk_ms);
  // Mispricing audit for the serving query log: no-op unless the calling
  // thread installed a sink (one thread_local load otherwise).
  obs::ScopedPlanAudit::Record(AlgorithmName(plan.chosen),
                               plan.chosen_predicted_ms,
                               local.simulated_disk_ms);
  if (stats != nullptr) {
    *stats += local;
  }
  return results;
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::Query(
    const DistanceFirstQuery& q, Algorithm algo, QueryStats* stats) {
  switch (algo) {
    case Algorithm::kRTree:
      return QueryRTree(q, stats);
    case Algorithm::kIio:
      return QueryIio(q, stats);
    case Algorithm::kIr2:
      return QueryIr2(q, stats);
    case Algorithm::kMir2:
      return QueryMir2(q, stats);
    case Algorithm::kKcTree:
      return QueryKc(q, stats);
    case Algorithm::kAuto:
      return QueryAuto(q, stats);
  }
  return Status::InvalidArgument("Unknown algorithm");
}

namespace {

const char* ExplainAlgoName(SpatialKeywordDatabase::ExplainAlgo algo) {
  switch (algo) {
    case SpatialKeywordDatabase::ExplainAlgo::kRTree:
      return "R-Tree";
    case SpatialKeywordDatabase::ExplainAlgo::kIio:
      return "IIO";
    case SpatialKeywordDatabase::ExplainAlgo::kIr2:
      return "IR2";
    case SpatialKeywordDatabase::ExplainAlgo::kMir2:
      return "MIR2";
    case SpatialKeywordDatabase::ExplainAlgo::kKcTree:
      return "KCTREE";
    case SpatialKeywordDatabase::ExplainAlgo::kAuto:
      return "AUTO";
  }
  return "?";
}

// Selectivities span many decades; %.3g keeps 1e-7 readable where FormatMs
// would render 0.00.
std::string FormatSelectivity(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", value);
  return buf;
}

// Under cold_queries the query itself clears the pools (zeroing their
// counters) before running, so a plain before/after diff can underflow;
// when it would, the after value alone is the query's epoch.
uint64_t CounterDelta(uint64_t after, uint64_t before) {
  return after >= before ? after - before : after;
}

std::string JoinKeywords(const std::vector<std::string>& keywords) {
  std::string out;
  for (const std::string& keyword : keywords) {
    if (!out.empty()) out += ", ";
    out += keyword;
  }
  return out;
}

void AddIoRow(obs::ExplainSection* section, const char* label,
              const IoStats& io) {
  section->AddRow({label, obs::FormatCount(io.random_reads),
                   obs::FormatCount(io.sequential_reads),
                   obs::FormatCount(io.TotalReads())});
}

}  // namespace

void AddCacheReuseSection(obs::ExplainReport* report,
                          const CacheReuseCheck& check) {
  obs::ExplainSection* section = report->AddSection("Result cache");
  char buf[96];
  if (!check.attempted) {
    section->AddRow("verdict", "miss (no entry for this keyword set)");
    return;
  }
  if (check.stale) {
    section->AddRow("verdict", "invalidated (mutation epoch moved)");
    return;
  }
  section->AddRow("cached results (K)", obs::FormatCount(check.cached_results));
  std::snprintf(buf, sizeof(buf), "%.6f", check.cached_radius);
  section->AddRow("cached radius r_K", buf);
  std::snprintf(buf, sizeof(buf), "%.6f", check.center_shift);
  section->AddRow("center shift dist(p, p')", buf);
  if (check.exhaustive) {
    section->AddRow("reuse proof", "entry is exhaustive (every match cached)");
  } else if (check.exact) {
    section->AddRow("reuse proof", "exact center, k' <= K (prefix of the "
                                   "cached total order)");
  } else {
    std::snprintf(buf, sizeof(buf), "d'_k' = %.6f %s r_K - shift = %.6f",
                  check.kth_distance, check.hit ? "<" : ">=",
                  check.cached_radius - check.center_shift);
    section->AddRow("reuse inequality", buf);
  }
  section->AddRow("verdict", check.hit ? "hit (answered from cache, zero "
                                         "index I/O)"
                                       : "miss (inequality not provable)");
}

StatusOr<SpatialKeywordDatabase::ExplainResult> SpatialKeywordDatabase::
    Explain(const DistanceFirstQuery& q, ExplainAlgo algo) {
  struct PoolRow {
    const char* name;
    const BufferPool* pool;
    BufferPoolStats before;
  };
  std::vector<PoolRow> pools;
  for (const auto& [name, pool] :
       {std::pair<const char*, const BufferPool*>{"objects",
                                                  object_pool_.get()},
        {"rtree", rtree_pool_.get()},
        {"ir2", ir2_pool_.get()},
        {"mir2", mir2_pool_.get()},
        {"kctree", kc_pool_.get()},
        {"iio", iio_pool_.get()}}) {
    if (pool != nullptr) {
      pools.push_back(PoolRow{name, pool, pool->Stats()});
    }
  }
  struct SchedulerRow {
    const char* name;
    const IoScheduler* scheduler;
    IoSchedulerStats before;
  };
  std::vector<SchedulerRow> schedulers;
  for (const auto& [name, scheduler] :
       {std::pair<const char*, const IoScheduler*>{"objects",
                                                   object_scheduler_.get()},
        {"rtree", rtree_scheduler_.get()},
        {"ir2", ir2_scheduler_.get()},
        {"mir2", mir2_scheduler_.get()},
        {"kctree", kc_scheduler_.get()},
        {"iio", iio_scheduler_.get()}}) {
    if (scheduler != nullptr) {
      schedulers.push_back(SchedulerRow{name, scheduler, scheduler->stats()});
    }
  }

  // Run the query through the regular path with a tracer installed; the
  // instrumentation adds no I/O, so every count matches an untraced run.
  ExplainResult out;
  obs::Tracer tracer;
  QueryPlan plan;
  CacheReuseCheck cache_check;
  StatusOr<std::vector<QueryResult>> results(std::vector<QueryResult>{});
  {
    obs::ScopedTracer scoped(&tracer);
    switch (algo) {
      case ExplainAlgo::kRTree:
        results = QueryRTree(q, &out.stats);
        break;
      case ExplainAlgo::kIio:
        results = QueryIio(q, &out.stats);
        break;
      case ExplainAlgo::kIr2:
        results = QueryIr2(q, &out.stats);
        break;
      case ExplainAlgo::kMir2:
        results = QueryMir2(q, &out.stats);
        break;
      case ExplainAlgo::kKcTree:
        results = QueryKc(q, &out.stats);
        break;
      case ExplainAlgo::kAuto:
        results = QueryAutoCached(q, &out.stats, &plan, &cache_check);
        break;
    }
  }
  IR2_RETURN_IF_ERROR(results.status());
  out.results = std::move(results).value();
  out.trace_json = tracer.ToChromeTraceJson();
  const QueryStats& stats = out.stats;

  obs::ExplainReport& report = out.report;
  report.title = std::string("EXPLAIN ") + ExplainAlgoName(algo) +
                 " distance-first top-" + std::to_string(q.k);

  obs::ExplainSection* query = report.AddSection("Query");
  if (algo == ExplainAlgo::kAuto && cache_check.hit) {
    query->AddRow("algorithm", "auto -> result cache (no plan executed)");
  } else if (algo == ExplainAlgo::kAuto) {
    query->AddRow("algorithm", std::string("auto -> ") +
                                   AlgorithmName(plan.chosen) +
                                   " (cost-based)");
  } else {
    query->AddRow("algorithm", ExplainAlgoName(algo));
  }
  if (q.area.has_value()) {
    query->AddRow("target", "area (MINDIST to rectangle)");
  } else {
    std::string target;
    for (uint32_t d = 0; d < q.point.dims(); ++d) {
      target += (d > 0 ? ", " : "(") + obs::FormatMs(q.point[d]);
    }
    query->AddRow("target", target + ")");
  }
  query->AddRow("keywords", JoinKeywords(q.keywords));
  query->AddRow("k", std::to_string(q.k));
  query->AddRow("regime", options_.cold_queries ? "cold (caches dropped)"
                                                : "warm");
  query->AddRow("prefetch", options_.prefetch ? "on" : "off");
  query->AddRow("simd", simd::LevelName(simd::ActiveLevel()));

  if (algo == ExplainAlgo::kAuto && result_cache_ != nullptr) {
    AddCacheReuseSection(&report, cache_check);
  }

  if (algo == ExplainAlgo::kAuto && !cache_check.hit) {
    // How the decision was made (docs/planner.md): every candidate's
    // static DiskModel estimate, the feedback-corrected prediction the
    // choice minimized, and how the chosen plan's prediction compared to
    // what execution actually cost.
    obs::ExplainSection* plan_section =
        report.AddSection("Planner (cost-based candidate pricing)");
    plan_section->columns = {"candidate", "feasible", "static est ms",
                             "predicted ms", ""};
    for (const PlanCandidate& candidate : plan.candidates) {
      plan_section->AddRow(
          {AlgorithmName(candidate.algo), candidate.feasible ? "yes" : "no",
           candidate.feasible ? obs::FormatMs(candidate.static_ms) : "-",
           candidate.feasible ? obs::FormatMs(candidate.predicted_ms) : "-",
           candidate.algo == plan.chosen ? "<- chosen" : ""});
    }
    plan_section->AddRow({"conjunction selectivity",
                          FormatSelectivity(plan.estimate.selectivity),
                          "bucket " + std::to_string(plan.bucket), "", ""});
    plan_section->AddRow({"estimated vs actual",
                          obs::FormatMs(plan.chosen_predicted_ms) + " est",
                          obs::FormatMs(stats.simulated_disk_ms) + " actual",
                          plan.chosen_predicted_ms > 0.0
                              ? FormatSelectivity(stats.simulated_disk_ms /
                                                  plan.chosen_predicted_ms) +
                                    "x"
                              : "-",
                          ""});
  }

  obs::ExplainSection* answers = report.AddSection("Results");
  answers->columns = {"rank", "ref", "object_id", "distance"};
  for (size_t i = 0; i < out.results.size(); ++i) {
    const QueryResult& r = out.results[i];
    answers->AddRow({std::to_string(i + 1), std::to_string(r.ref),
                     std::to_string(r.object_id), obs::FormatMs(r.distance)});
  }

  obs::ExplainSection* traversal = report.AddSection("Traversal");
  traversal->AddRow("nodes visited", obs::FormatCount(stats.nodes_visited));
  traversal->AddRow("entries pruned (signature)",
                    obs::FormatCount(stats.entries_pruned));
  traversal->AddRow("objects loaded", obs::FormatCount(stats.objects_loaded));
  traversal->AddRow("false positives",
                    obs::FormatCount(stats.false_positives));
  traversal->AddRow("wall clock ms", obs::FormatMs(stats.seconds * 1000.0));

  if (!stats.entries_pruned_per_level.empty()) {
    obs::ExplainSection* pruning = report.AddSection(
        "Signature pruning per level (0 = leaf entries -> objects skipped)");
    pruning->columns = {"level", "entries pruned"};
    for (size_t level = 0; level < stats.entries_pruned_per_level.size();
         ++level) {
      pruning->AddRow({std::to_string(level),
                       obs::FormatCount(stats.entries_pruned_per_level[level])});
    }
  }

  if (stats.kc_bitmap_tests > 0) {
    // KC-Tree breakdown: which hot cluster's exact bitmap (zero false
    // positives) vs the cold-tail signature decided each prune. Attribution
    // is scalar and SIMD-tier-invariant (core/kc_tree.cc).
    obs::ExplainSection* kc_section = report.AddSection(
        "KC-Tree pruning (exact hot clusters vs cold-tail signature)");
    kc_section->columns = {"source", "words", "entries pruned"};
    for (size_t c = 0; c < stats.kc_cluster_prunes.size(); ++c) {
      if (stats.kc_cluster_prunes[c] == 0) {
        continue;
      }
      std::string words;
      if (kc_vocab_ != nullptr) {
        for (const KcVocabulary::Word& word : kc_vocab_->words()) {
          if (word.cluster == c) {
            if (!words.empty()) words += ", ";
            words += word.word;
          }
        }
      }
      kc_section->AddRow({"cluster " + std::to_string(c), words,
                          obs::FormatCount(stats.kc_cluster_prunes[c])});
    }
    kc_section->AddRow({"cold-tail signature", "-",
                        obs::FormatCount(stats.kc_signature_prunes)});
    kc_section->AddRow({"containment tests", "-",
                        obs::FormatCount(stats.kc_bitmap_tests)});
  }

  obs::ExplainSection* io = report.AddSection("Block I/O");
  io->columns = {"class", "random", "sequential", "total"};
  AddIoRow(io, "demand (pool-level requests)", stats.demand_io);
  AddIoRow(io, "physical, query thread", stats.io);
  AddIoRow(io, "speculative (prefetch threads)", stats.speculative_io);

  const DiskModel model(options_.disk_model);
  obs::ExplainSection* disk = report.AddSection("DiskModel time breakdown");
  disk->columns = {"component", "accesses", "ms"};
  const double demand_random_ms =
      static_cast<double>(stats.io.random_reads) * model.RandomAccessMs();
  const double demand_seq_ms = static_cast<double>(stats.io.sequential_reads) *
                               model.SequentialAccessMs();
  const double spec_random_ms =
      static_cast<double>(stats.speculative_io.random_reads) *
      model.RandomAccessMs();
  const double spec_seq_ms =
      static_cast<double>(stats.speculative_io.sequential_reads) *
      model.SequentialAccessMs();
  disk->AddRow({"demand random (seek+rotation)",
                obs::FormatCount(stats.io.random_reads),
                obs::FormatMs(demand_random_ms)});
  disk->AddRow({"demand sequential (transfer)",
                obs::FormatCount(stats.io.sequential_reads),
                obs::FormatMs(demand_seq_ms)});
  disk->AddRow({"speculative random",
                obs::FormatCount(stats.speculative_io.random_reads),
                obs::FormatMs(spec_random_ms)});
  disk->AddRow({"speculative sequential",
                obs::FormatCount(stats.speculative_io.sequential_reads),
                obs::FormatMs(spec_seq_ms)});
  disk->AddRow({"total simulated", "",
                obs::FormatMs(stats.simulated_disk_ms)});
  disk->AddRow(
      {"model", "",
       obs::FormatMs(model.RandomAccessMs()) + " ms/random, " +
           obs::FormatMs(model.SequentialAccessMs()) + " ms/sequential"});

  obs::ExplainSection* pool_section =
      report.AddSection("Buffer pools (this query)");
  pool_section->columns = {"pool", "hits", "misses", "hit ratio"};
  for (const PoolRow& row : pools) {
    const BufferPoolStats after = row.pool->Stats();
    const uint64_t hits = CounterDelta(after.hits, row.before.hits);
    const uint64_t misses = CounterDelta(after.misses, row.before.misses);
    pool_section->AddRow({row.name, obs::FormatCount(hits),
                          obs::FormatCount(misses),
                          obs::FormatRatio(hits, hits + misses)});
  }

  struct TreeRow {
    const char* name;
    RTreeBase* tree;
  };
  bool any_node_cache = false;
  for (const TreeRow& row :
       {TreeRow{"rtree", rtree_.get()}, TreeRow{"ir2", ir2_.get()},
        TreeRow{"mir2", mir2_.get()}, TreeRow{"kctree", kc_.get()}}) {
    if (row.tree != nullptr && row.tree->node_cache() != nullptr) {
      if (!any_node_cache) {
        obs::ExplainSection* caches = report.AddSection("Node caches");
        caches->columns = {"tree", "hits", "misses", "hit ratio", "pinned"};
        any_node_cache = true;
      }
      const NodeCacheStats s = row.tree->node_cache()->Stats();
      report.sections.back().AddRow(
          {row.name, obs::FormatCount(s.hits), obs::FormatCount(s.misses),
           obs::FormatRatio(s.hits, s.hits + s.misses),
           obs::FormatCount(s.pinned)});
    }
  }

  if (options_.prefetch) {
    obs::ExplainSection* sched_section =
        report.AddSection("Prefetch schedulers (this query)");
    sched_section->columns = {"scheduler", "requested", "deduped", "runs",
                              "blocks fetched"};
    for (const SchedulerRow& row : schedulers) {
      const IoSchedulerStats after = row.scheduler->stats();
      sched_section->AddRow(
          {row.name,
           obs::FormatCount(CounterDelta(after.requested, row.before.requested)),
           obs::FormatCount(CounterDelta(after.deduped, row.before.deduped)),
           obs::FormatCount(CounterDelta(after.runs, row.before.runs)),
           obs::FormatCount(
               CounterDelta(after.blocks_fetched, row.before.blocks_fetched))});
    }
  }

  obs::ExplainSection* spans = report.AddSection("Trace spans");
  spans->columns = {"span", "count", "total ms"};
  uint64_t counts[obs::kNumSpanKinds] = {};
  double total_us[obs::kNumSpanKinds] = {};
  for (const obs::TraceEvent& event : tracer.Events()) {
    const int kind = static_cast<int>(event.kind);
    ++counts[kind];
    total_us[kind] += static_cast<double>(event.dur_us);
  }
  for (int kind = 0; kind < obs::kNumSpanKinds; ++kind) {
    if (counts[kind] == 0) continue;
    spans->AddRow({obs::SpanKindName(static_cast<obs::SpanKind>(kind)),
                   obs::FormatCount(counts[kind]),
                   obs::FormatMs(total_us[kind] / 1000.0)});
  }
  if (tracer.dropped() > 0) {
    spans->AddRow({"(dropped, ring full)", obs::FormatCount(tracer.dropped()),
                   "-"});
  }
  return out;
}

StatusOr<std::vector<QueryResult>> SpatialKeywordDatabase::QueryGeneral(
    const GeneralQuery& q, QueryStats* stats, bool use_mir2) {
  Ir2Tree* tree = use_mir2 ? mir2_.get() : ir2_.get();
  if (tree == nullptr) {
    return Status::FailedPrecondition("Requested tree was not built");
  }
  if (iio_ == nullptr) {
    return Status::FailedPrecondition(
        "General queries need the inverted index for keyword idfs");
  }
  return RunQuery(stats, [&](QueryStats* local) {
    std::vector<ScoredQueryTerm> terms =
        BuildQueryTerms(*iio_, *scorer_, tokenizer_, q.keywords);
    return GeneralIr2TopK(*tree, *object_store_, tokenizer_, *scorer_, terms,
                          q, local);
  });
}

StatusOr<std::vector<ObjectRef>> SpatialKeywordDatabase::KeywordMatches(
    const std::vector<std::string>& keywords, QueryStats* stats) {
  if (iio_ == nullptr) {
    return Status::FailedPrecondition("Inverted index was not built");
  }
  std::vector<std::string> normalized = tokenizer_.NormalizeKeywords(keywords);
  if (normalized.empty()) {
    return Status::InvalidArgument(
        "Keyword query needs at least one (non-stopword) keyword");
  }
  if (options_.cold_queries) {
    IR2_RETURN_IF_ERROR(DropCaches());
  }
  // Same three-way accounting as RunQuery (see the comment there).
  const IoStats demand_before = PoolThreadIo();
  const IoStats physical_before = DeviceThreadIo();
  const IoStats speculative_before = SchedulerIo();
  Stopwatch watch;
  std::vector<std::vector<ObjectRef>> lists;
  lists.reserve(normalized.size());
  for (const std::string& keyword : normalized) {
    IR2_ASSIGN_OR_RETURN(std::vector<ObjectRef> list,
                         iio_->RetrieveList(keyword));
    lists.push_back(std::move(list));
  }
  std::vector<ObjectRef> matches = IntersectSorted(lists);
  if (options_.prefetch) {
    DrainSchedulers();
  }
  if (stats != nullptr) {
    stats->seconds += watch.ElapsedSeconds();
    const IoStats io = DeviceThreadIo() - physical_before;
    const IoStats speculative = SchedulerIo() - speculative_before;
    stats->io += io;
    stats->demand_io += PoolThreadIo() - demand_before;
    stats->speculative_io += speculative;
    const DiskModel model(options_.disk_model);
    stats->simulated_disk_ms += model.Ms(io) + model.Ms(speculative);
  }
  return matches;
}

uint64_t SpatialKeywordDatabase::ObjectFileBytes() const {
  return object_device_ ? object_device_->SizeBytes() : 0;
}
uint64_t SpatialKeywordDatabase::RTreeBytes() const {
  return rtree_device_ ? rtree_device_->SizeBytes() : 0;
}
uint64_t SpatialKeywordDatabase::Ir2TreeBytes() const {
  return ir2_device_ ? ir2_device_->SizeBytes() : 0;
}
uint64_t SpatialKeywordDatabase::Mir2TreeBytes() const {
  return mir2_device_ ? mir2_device_->SizeBytes() : 0;
}
uint64_t SpatialKeywordDatabase::KcTreeBytes() const {
  return kc_device_ ? kc_device_->SizeBytes() : 0;
}
uint64_t SpatialKeywordDatabase::IioBytes() const {
  return iio_device_ ? iio_device_->SizeBytes() : 0;
}

namespace {

constexpr const char* kManifestName = "manifest.txt";

std::string DevicePath(const std::string& directory, const char* name) {
  return directory + "/" + name;
}

// Persists one (possibly absent) device to `<directory>/<name>.dat`,
// ending with a write barrier: the bytes are on stable storage before the
// manifest that references them is written.
Status SaveDevice(BlockDevice* device, const std::string& directory,
                  const char* name) {
  if (device == nullptr) {
    return Status::Ok();
  }
  IR2_ASSIGN_OR_RETURN(std::unique_ptr<FileBlockDevice> file,
                       FileBlockDevice::Create(DevicePath(directory, name),
                                               device->block_size()));
  IR2_RETURN_IF_ERROR(CopyBlocks(device, file.get()));
  return file->Sync();
}

// Durability barrier on an already-written path. Fsyncing the directory
// itself makes the dirents of freshly created files durable too.
Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open for fsync " + path + ": " +
                           std::strerror(errno));
  }
  Status status = Status::Ok();
  if (::fsync(fd) != 0) {
    status =
        Status::IoError("fsync " + path + ": " + std::strerror(errno));
  }
  ::close(fd);
  return status;
}

}  // namespace

Status SpatialKeywordDatabase::Save(const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("create_directories(" + directory +
                           "): " + ec.message());
  }
  // Make sure every dirty page and superblock is on its device.
  for (RTreeBase* tree : {static_cast<RTreeBase*>(rtree_.get()),
                          static_cast<RTreeBase*>(ir2_.get()),
                          static_cast<RTreeBase*>(mir2_.get()),
                          static_cast<RTreeBase*>(kc_.get())}) {
    if (tree != nullptr) {
      IR2_RETURN_IF_ERROR(tree->Flush());
    }
  }

  IR2_RETURN_IF_ERROR(SaveDevice(object_device_.get(), directory,
                                 "objects.dat"));
  IR2_RETURN_IF_ERROR(SaveDevice(rtree_device_.get(), directory,
                                 "rtree.dat"));
  IR2_RETURN_IF_ERROR(SaveDevice(ir2_device_.get(), directory, "ir2.dat"));
  IR2_RETURN_IF_ERROR(SaveDevice(mir2_device_.get(), directory, "mir2.dat"));
  IR2_RETURN_IF_ERROR(SaveDevice(kc_device_.get(), directory, "kctree.dat"));
  IR2_RETURN_IF_ERROR(SaveDevice(iio_device_.get(), directory, "iio.dat"));

  std::ofstream manifest(DevicePath(directory, kManifestName),
                         std::ios::trunc);
  if (!manifest) {
    return Status::IoError("cannot write manifest in " + directory);
  }
  manifest << "ir2db 1\n";
  manifest << "num_objects " << stats_.num_objects << "\n";
  manifest << "total_tokens " << stats_.total_tokens << "\n";
  manifest << "total_distinct_words " << stats_.total_distinct_words << "\n";
  manifest << "vocabulary_size " << stats_.vocabulary_size << "\n";
  manifest << "object_file_bytes " << stats_.object_file_bytes << "\n";
  manifest << "object_file_blocks " << stats_.object_file_blocks << "\n";
  manifest << "dims " << options_.tree_options.dims << "\n";
  manifest << "min_fill_fraction " << options_.tree_options.min_fill_fraction
           << "\n";
  manifest << "capacity_override " << options_.tree_options.capacity_override
           << "\n";
  manifest << "ir2_signature " << options_.ir2_signature.bits << " "
           << options_.ir2_signature.hashes_per_word << "\n";
  if (mir2_ != nullptr) {
    manifest << "mir2_scheme " << mir2_->scheme().per_level.size();
    for (const SignatureConfig& config : mir2_->scheme().per_level) {
      manifest << " " << config.bits << " " << config.hashes_per_word;
    }
    manifest << "\n";
  }
  manifest << "pool_blocks " << options_.pool_blocks << "\n";
  manifest << "cold_queries " << (options_.cold_queries ? 1 : 0) << "\n";
  manifest << "built " << (rtree_ != nullptr) << " " << (ir2_ != nullptr)
           << " " << (mir2_ != nullptr) << " " << (iio_ != nullptr) << "\n";
  if (kc_ != nullptr && kc_vocab_ != nullptr) {
    // KC keys are additive: a manifest without them (pre-KC save) opens
    // with the KC-Tree absent, and the word list is everything FromWords
    // needs to reconstruct the vocabulary bit-for-bit (hashes recomputed).
    manifest << "kc_built 1\n";
    manifest << "kc_cold " << kc_vocab_->cold_config().bits << " "
             << kc_vocab_->cold_config().hashes_per_word << "\n";
    manifest << "kc_hot " << kc_vocab_->words().size();
    for (const KcVocabulary::Word& word : kc_vocab_->words()) {
      manifest << " " << word.word << " " << word.df << " " << word.cluster;
    }
    manifest << "\n";
  }
  manifest << "stopwords " << options_.stopwords.size();
  for (const std::string& word : options_.stopwords) {
    manifest << " " << word;
  }
  manifest << "\n";
  manifest.close();
  if (!manifest) {
    return Status::IoError("manifest write failed in " + directory);
  }
  // The manifest is the commit point: fsync it, then the directory, so a
  // crash after Save() returns can never leave a manifest that references
  // missing or partially written device files.
  IR2_RETURN_IF_ERROR(FsyncPath(DevicePath(directory, kManifestName)));
  IR2_RETURN_IF_ERROR(FsyncPath(directory));
  ResetIoStats();
  return Status::Ok();
}

StatusOr<std::unique_ptr<SpatialKeywordDatabase>> SpatialKeywordDatabase::
    Open(const std::string& directory) {
  return OpenImpl(directory, nullptr);
}

StatusOr<std::unique_ptr<SpatialKeywordDatabase>> SpatialKeywordDatabase::
    Open(const std::string& directory, const DatabaseOptions& runtime) {
  return OpenImpl(directory, &runtime);
}

StatusOr<std::unique_ptr<SpatialKeywordDatabase>> SpatialKeywordDatabase::
    OpenImpl(const std::string& directory, const DatabaseOptions* runtime) {
  std::ifstream manifest(DevicePath(directory, kManifestName));
  if (!manifest) {
    return Status::NotFound("no manifest in " + directory);
  }
  std::unique_ptr<SpatialKeywordDatabase> db(new SpatialKeywordDatabase());
  DatabaseOptions& options = db->options_;
  DatasetStats& stats = db->stats_;
  bool built_rtree = false, built_ir2 = false, built_mir2 = false,
       built_iio = false, built_kc = false;
  MultilevelScheme mir2_scheme;
  SignatureConfig kc_cold{0, 0};
  std::vector<KcVocabulary::Word> kc_words;

  std::string key;
  while (manifest >> key) {
    if (key == "ir2db") {
      int version = 0;
      manifest >> version;
      if (version != 1) {
        return Status::InvalidArgument("unsupported manifest version");
      }
    } else if (key == "num_objects") {
      manifest >> stats.num_objects;
    } else if (key == "total_tokens") {
      manifest >> stats.total_tokens;
    } else if (key == "total_distinct_words") {
      manifest >> stats.total_distinct_words;
    } else if (key == "vocabulary_size") {
      manifest >> stats.vocabulary_size;
    } else if (key == "object_file_bytes") {
      manifest >> stats.object_file_bytes;
    } else if (key == "object_file_blocks") {
      manifest >> stats.object_file_blocks;
    } else if (key == "dims") {
      manifest >> options.tree_options.dims;
    } else if (key == "min_fill_fraction") {
      manifest >> options.tree_options.min_fill_fraction;
    } else if (key == "capacity_override") {
      manifest >> options.tree_options.capacity_override;
    } else if (key == "ir2_signature") {
      manifest >> options.ir2_signature.bits >>
          options.ir2_signature.hashes_per_word;
    } else if (key == "mir2_scheme") {
      size_t levels = 0;
      manifest >> levels;
      mir2_scheme.per_level.resize(levels);
      for (SignatureConfig& config : mir2_scheme.per_level) {
        manifest >> config.bits >> config.hashes_per_word;
      }
    } else if (key == "pool_blocks") {
      manifest >> options.pool_blocks;
    } else if (key == "cold_queries") {
      int flag = 0;
      manifest >> flag;
      options.cold_queries = flag != 0;
    } else if (key == "built") {
      manifest >> built_rtree >> built_ir2 >> built_mir2 >> built_iio;
    } else if (key == "kc_built") {
      int flag = 0;
      manifest >> flag;
      built_kc = flag != 0;
    } else if (key == "kc_cold") {
      manifest >> kc_cold.bits >> kc_cold.hashes_per_word;
    } else if (key == "kc_hot") {
      size_t n = 0;
      manifest >> n;
      kc_words.resize(n);
      for (KcVocabulary::Word& word : kc_words) {
        manifest >> word.word >> word.df >> word.cluster;
      }
    } else if (key == "stopwords") {
      size_t n = 0;
      manifest >> n;
      for (size_t i = 0; i < n; ++i) {
        std::string word;
        manifest >> word;
        options.stopwords.insert(std::move(word));
      }
    } else {
      return Status::Corruption("unknown manifest key: " + key);
    }
    if (!manifest && !manifest.eof()) {
      return Status::Corruption("malformed manifest value for " + key);
    }
  }
  options.build_rtree = built_rtree;
  options.build_ir2 = built_ir2;
  options.build_mir2 = built_mir2;
  options.build_iio = built_iio;
  options.build_kc = built_kc;
  options.mir2_scheme = mir2_scheme;
  if (runtime != nullptr) {
    // Runtime-class knobs come from the caller: how to read the database is
    // the opener's choice, what is in it stays the manifest's.
    options.pool_blocks = runtime->pool_blocks;
    options.cold_queries = runtime->cold_queries;
    options.prefetch = runtime->prefetch;
    options.prefetch_objects = runtime->prefetch_objects;
    options.scheduler = runtime->scheduler;
    options.disk_model = runtime->disk_model;
    options.file_device = runtime->file_device;
    options.async_io_threads = runtime->async_io_threads;
  }
  db->tokenizer_ = Tokenizer(options.stopwords);

  // Object file.
  IR2_ASSIGN_OR_RETURN(
      std::unique_ptr<FileBlockDevice> object_device,
      FileBlockDevice::Open(DevicePath(directory, "objects.dat"),
                            kDefaultBlockSize, options.file_device));
  db->object_device_ = std::move(object_device);
  db->object_pool_ = std::make_unique<BufferPool>(
      db->object_device_.get(), options.prefetch ? options.pool_blocks : 0);
  db->object_store_ = std::make_unique<ObjectStore>(
      db->object_pool_.get(), stats.object_file_bytes);

  if (built_rtree) {
    IR2_ASSIGN_OR_RETURN(
        std::unique_ptr<FileBlockDevice> device,
        FileBlockDevice::Open(DevicePath(directory, "rtree.dat"),
                              kDefaultBlockSize, options.file_device));
    db->rtree_device_ = std::move(device);
    db->rtree_pool_ = std::make_unique<BufferPool>(db->rtree_device_.get(),
                                                   options.pool_blocks);
    db->rtree_ = std::make_unique<RTree>(db->rtree_pool_.get(),
                                         options.tree_options);
    IR2_RETURN_IF_ERROR(db->rtree_->Load());
  }
  if (built_ir2) {
    IR2_ASSIGN_OR_RETURN(
        std::unique_ptr<FileBlockDevice> device,
        FileBlockDevice::Open(DevicePath(directory, "ir2.dat"),
                              kDefaultBlockSize, options.file_device));
    db->ir2_device_ = std::move(device);
    db->ir2_pool_ = std::make_unique<BufferPool>(db->ir2_device_.get(),
                                                 options.pool_blocks);
    db->ir2_ = std::make_unique<Ir2Tree>(db->ir2_pool_.get(),
                                         options.tree_options,
                                         options.ir2_signature);
    IR2_RETURN_IF_ERROR(db->ir2_->Load());
  }
  if (built_mir2) {
    if (mir2_scheme.per_level.empty()) {
      return Status::Corruption("manifest missing mir2_scheme");
    }
    IR2_ASSIGN_OR_RETURN(
        std::unique_ptr<FileBlockDevice> device,
        FileBlockDevice::Open(DevicePath(directory, "mir2.dat"),
                              kDefaultBlockSize, options.file_device));
    db->mir2_device_ = std::move(device);
    db->mir2_pool_ = std::make_unique<BufferPool>(db->mir2_device_.get(),
                                                  options.pool_blocks);
    RTreeOptions mir2_options = options.tree_options;
    db->mir2_ = std::make_unique<Mir2Tree>(
        db->mir2_pool_.get(), mir2_options, mir2_scheme,
        db->object_store_.get(), &db->tokenizer_);
    IR2_RETURN_IF_ERROR(db->mir2_->Load());
  }
  if (built_kc) {
    IR2_ASSIGN_OR_RETURN(
        KcVocabulary vocab,
        KcVocabulary::FromWords(std::move(kc_words), kc_cold));
    db->kc_vocab_ = std::make_unique<KcVocabulary>(std::move(vocab));
    IR2_ASSIGN_OR_RETURN(
        std::unique_ptr<FileBlockDevice> device,
        FileBlockDevice::Open(DevicePath(directory, "kctree.dat"),
                              kDefaultBlockSize, options.file_device));
    db->kc_device_ = std::move(device);
    db->kc_pool_ = std::make_unique<BufferPool>(db->kc_device_.get(),
                                                options.pool_blocks);
    db->kc_ = std::make_unique<KcTree>(db->kc_pool_.get(),
                                       options.tree_options,
                                       db->kc_vocab_.get());
    IR2_RETURN_IF_ERROR(db->kc_->Load());
  }
  if (built_iio) {
    IR2_ASSIGN_OR_RETURN(
        std::unique_ptr<FileBlockDevice> device,
        FileBlockDevice::Open(DevicePath(directory, "iio.dat"),
                              kDefaultBlockSize, options.file_device));
    db->iio_device_ = std::move(device);
    db->iio_pool_ = std::make_unique<BufferPool>(
        db->iio_device_.get(), options.prefetch ? options.pool_blocks : 0);
    IR2_ASSIGN_OR_RETURN(db->iio_, InvertedIndex::Open(db->iio_pool_.get()));
  }
  db->scorer_ = std::make_unique<IrScorer>(
      CorpusStats{stats.num_objects, stats.AvgDocLen()});
  db->WireIoEngine();
  // As in Build: snapshot the planner's tree shapes before zeroing stats.
  IR2_RETURN_IF_ERROR(db->WirePlanner());
  db->ResetIoStats();
  return db;
}

}  // namespace ir2
