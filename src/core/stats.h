#ifndef IR2TREE_CORE_STATS_H_
#define IR2TREE_CORE_STATS_H_

// Shared selectivity arithmetic for conjunctive keyword queries. Both the
// scan-vs-seek object-file sweep (database.cc) and the cost-based query
// planner (planner.cc) need the same two quantities — the selectivity of
// the keyword conjunction and the object loads a distance-first top-k
// traversal is expected to perform — so the formula lives here once.
// Everything is computed from the inverted index's in-memory dictionary:
// no I/O.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "text/inverted_index.h"

namespace ir2 {

// Selectivity of a conjunctive (AND) keyword query under the independence
// assumption, Section VI cost-model style: the probability that a random
// object contains every keyword is the product of the per-keyword document
// frequencies over the corpus size. A keyword with zero frequency matches
// nothing and zeroes the whole conjunction.
struct ConjunctionEstimate {
  // Product over keywords of df/N; 1.0 for an empty conjunction (every
  // object matches a keyword-less query), 0.0 when any keyword is absent.
  double selectivity = 1.0;
  // Document frequency per keyword, in input order.
  std::vector<uint64_t> dfs;

  // Rarest keyword's document frequency (the galloping intersection's
  // driver list); N for an empty conjunction.
  uint64_t MinDf(uint64_t num_objects) const {
    uint64_t min_df = num_objects;
    for (uint64_t df : dfs) min_df = df < min_df ? df : min_df;
    return min_df;
  }
  // Expected number of objects containing every keyword.
  double ExpectedMatches(uint64_t num_objects) const {
    return selectivity * static_cast<double>(num_objects);
  }
};

// Estimates the conjunction of `normalized_keywords` (the output of
// Tokenizer::NormalizeKeywords) from the index's in-memory dictionary.
ConjunctionEstimate EstimateConjunction(
    const InvertedIndex& index, std::span<const std::string> normalized_keywords,
    uint64_t num_objects);

// Expected LoadObject calls a distance-first top-k traversal performs when
// every distance-ordered candidate is verified until k pass the keyword
// check: k / selectivity, capped at the corpus size. Zero selectivity (a
// keyword matching nothing) forces the traversal to verify its way through
// everything.
double ExpectedVerificationLoads(double selectivity, uint32_t k,
                                 uint64_t num_objects);

}  // namespace ir2

#endif  // IR2TREE_CORE_STATS_H_
