#include "core/batch_executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "rtree/rtree_base.h"
#include "storage/buffer_pool.h"

namespace ir2 {

QueryStats BatchResults::Aggregate() const {
  QueryStats total;
  for (const QueryStats& stats : per_query) {
    total += stats;
  }
  return total;
}

BatchExecutor::BatchExecutor(const Ir2Tree* tree, const ObjectStore* objects,
                             const Tokenizer* tokenizer,
                             BatchExecutorOptions options)
    : tree_(tree),
      objects_(objects),
      tokenizer_(tokenizer),
      options_(options) {
  IR2_CHECK(tree != nullptr);
  IR2_CHECK(objects != nullptr);
  IR2_CHECK(tokenizer != nullptr);
}

StatusOr<BatchResults> BatchExecutor::Run(
    std::span<const DistanceFirstQuery> queries) const {
  BatchResults out;
  out.results.resize(queries.size());
  out.per_query.resize(queries.size());
  if (queries.empty()) {
    return out;
  }

  size_t num_threads = options_.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, queries.size());

  BlockDevice* tree_device = tree_->pool()->device();
  BlockDevice* object_device = objects_->device();

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status first_error = Status::Ok();

  auto thread_io = [&]() {
    // The tree and object file usually live on distinct devices (the
    // database gives every structure its own); when they share one, count
    // it once.
    IoStats io = tree_device->thread_stats();
    if (object_device != tree_device) {
      io += object_device->thread_stats();
    }
    return io;
  };

  std::mutex stats_mu;

  auto run_one = [&](BufferPool* local_pool, Ir2QueryScratch* scratch,
                     BufferPoolStats* pool_accum,
                     const DistanceFirstQuery& query,
                     std::vector<QueryResult>* results,
                     QueryStats* stats) -> Status {
    if (options_.cold_queries) {
      // Clear() resets the pool's counters (a new cold epoch), so bank the
      // closing epoch's counts first.
      *pool_accum += local_pool->Stats();
      IR2_RETURN_IF_ERROR(local_pool->Clear());
      if (NodeCache* cache = tree_->node_cache()) {
        // A decoded-node cache would also short-circuit the cold device
        // reads; drop it so each query's disk counts stay a pure function
        // of the query.
        cache->Clear();
      }
      tree_device->ResetThreadCursor();
      if (object_device != tree_device) {
        object_device->ResetThreadCursor();
      }
    }
    const IoStats before = thread_io();
    Stopwatch watch;
    QueryStats local;
    IR2_ASSIGN_OR_RETURN(*results,
                         Ir2TopK(*tree_, *objects_, *tokenizer_, query,
                                 &local, scratch));
    local.seconds = watch.ElapsedSeconds();
    local.io = thread_io() - before;
    *stats = local;
    return Status::Ok();
  };

  auto worker = [&]() {
    // Private node cache over the shared device for the life of the worker;
    // every LoadNode this thread issues against the tree reads through it.
    BufferPool local_pool(tree_device, options_.pool_blocks);
    ScopedReadPool scope(tree_, &local_pool);
    // Reusable traversal buffers: the NN priority queue, keyword hashes and
    // query signatures stop allocating once their capacities have grown.
    Ir2QueryScratch scratch;
    BufferPoolStats pool_accum;
    // Private registry so the batch counters cost no cross-worker
    // coordination while queries run; merged into the global registry once
    // when the worker drains.
    obs::MetricsRegistry local_metrics;
    obs::Counter* batch_queries = local_metrics.GetCounter(
        "ir2_batch_queries_total", "Queries completed by batch workers.");
    obs::Histogram* batch_latency = local_metrics.GetHistogram(
        "ir2_batch_query_latency_ms",
        "Per-query wall-clock latency inside batch workers (ms).");
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) {
        break;
      }
      Status status = run_one(&local_pool, &scratch, &pool_accum, queries[i],
                              &out.results[i], &out.per_query[i]);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error = std::move(status);
        }
        failed.store(true, std::memory_order_relaxed);
        break;
      }
      batch_queries->Add();
      batch_latency->Record(out.per_query[i].seconds * 1000.0);
    }
    pool_accum += local_pool.Stats();
    obs::MetricsRegistry::Global().MergeFrom(local_metrics);
    std::lock_guard<std::mutex> lock(stats_mu);
    out.pool_stats += pool_accum;
  };

  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  if (!first_error.ok()) {
    return first_error;
  }
  return out;
}

}  // namespace ir2
