#include "core/batch_executor.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/database.h"
#include "core/iio.h"
#include "core/kc_tree.h"
#include "core/rtree_baseline.h"
#include "obs/metrics.h"
#include "rtree/rtree_base.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"

namespace ir2 {

QueryStats BatchResults::Aggregate() const {
  QueryStats total;
  for (const QueryStats& stats : per_query) {
    total += stats;
  }
  return total;
}

BatchExecutor::BatchExecutor(const Ir2Tree* tree, const ObjectStore* objects,
                             const Tokenizer* tokenizer,
                             BatchExecutorOptions options)
    : tree_(tree),
      objects_(objects),
      tokenizer_(tokenizer),
      options_(options) {
  IR2_CHECK(tree != nullptr);
  IR2_CHECK(objects != nullptr);
  IR2_CHECK(tokenizer != nullptr);
}

BatchExecutor::BatchExecutor(SpatialKeywordDatabase* db,
                             BatchExecutorOptions options)
    : db_(db), options_(options) {
  IR2_CHECK(db != nullptr);
}

StatusOr<BatchResults> BatchExecutor::RunDatabase(
    std::span<const DistanceFirstQuery> queries) const {
  BatchResults out;
  out.results.resize(queries.size());
  out.per_query.resize(queries.size());
  if (queries.empty()) {
    return out;
  }
  if (db_->options().prefetch) {
    // A shared caching object/IIO pool would leak one worker's reads into
    // another's cold profile; this mode needs the bypass pools.
    return Status::InvalidArgument(
        "Database-mode BatchExecutor requires prefetch off");
  }
  QueryPlanner* planner = db_->planner();
  if (options_.algorithm == Algorithm::kAuto && planner == nullptr) {
    return Status::FailedPrecondition("Planner was not built");
  }

  const ObjectStore& objects = db_->object_store();
  const Tokenizer& tokenizer = db_->tokenizer();
  // Trees get worker-private pools (node reads are the contended hot
  // path); object and posting reads go through the database's bypass
  // pools, which forward per-thread counts 1:1 to their devices.
  struct TreeCtx {
    RTreeBase* tree;
    BlockDevice* device;
  };
  std::vector<TreeCtx> trees;
  for (RTreeBase* tree : {static_cast<RTreeBase*>(db_->rtree()),
                          static_cast<RTreeBase*>(db_->ir2_tree()),
                          static_cast<RTreeBase*>(db_->mir2_tree()),
                          static_cast<RTreeBase*>(db_->kc_tree())}) {
    if (tree != nullptr) {
      trees.push_back(TreeCtx{tree, tree->pool()->device()});
    }
  }
  // Per-thread I/O accounting and cold cursor resets cover every distinct
  // device a query of any algorithm can touch.
  std::vector<BlockDevice*> devices;
  auto add_device = [&devices](BlockDevice* device) {
    if (device != nullptr &&
        std::find(devices.begin(), devices.end(), device) == devices.end()) {
      devices.push_back(device);
    }
  };
  add_device(objects.device());
  for (const TreeCtx& ctx : trees) {
    add_device(ctx.device);
  }
  if (db_->inverted_index() != nullptr) {
    add_device(db_->inverted_index()->device());
  }

  size_t num_threads = options_.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, queries.size());

  const DiskModel model(db_->options().disk_model);

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status first_error = Status::Ok();
  std::mutex stats_mu;

  auto thread_io = [&devices]() {
    IoStats io;
    for (BlockDevice* device : devices) {
      io += device->thread_stats();
    }
    return io;
  };

  auto worker = [&]() {
    // One private pool per tree, routed via ScopedReadPool for the life of
    // the worker (the scopes unwind LIFO at worker exit).
    std::vector<std::unique_ptr<BufferPool>> local_pools;
    std::vector<std::unique_ptr<ScopedReadPool>> scopes;
    local_pools.reserve(trees.size());
    scopes.reserve(trees.size());
    for (const TreeCtx& ctx : trees) {
      local_pools.push_back(
          std::make_unique<BufferPool>(ctx.device, options_.pool_blocks));
      scopes.push_back(std::make_unique<ScopedReadPool>(
          ctx.tree, local_pools.back().get()));
    }
    Ir2QueryScratch scratch;
    BufferPoolStats pool_accum;
    // Worker-private feedback and metrics, merged once on drain.
    PlannerFeedback local_feedback;
    obs::MetricsRegistry local_metrics;
    obs::Counter* batch_queries = local_metrics.GetCounter(
        "ir2_batch_queries_total", "Queries completed by batch workers.");
    obs::Histogram* batch_latency = local_metrics.GetHistogram(
        "ir2_batch_query_latency_ms",
        "Per-query wall-clock latency inside batch workers (ms).");

    auto run_one = [&](const DistanceFirstQuery& query,
                       std::vector<QueryResult>* results,
                       QueryStats* stats) -> Status {
      if (options_.cold_queries) {
        for (const auto& pool : local_pools) {
          pool_accum += pool->Stats();
          IR2_RETURN_IF_ERROR(pool->Clear());
        }
        for (const TreeCtx& ctx : trees) {
          if (NodeCache* cache = ctx.tree->node_cache()) {
            cache->Clear();
          }
        }
        for (BlockDevice* device : devices) {
          device->ResetThreadCursor();
        }
      }
      Algorithm algo = options_.algorithm;
      QueryPlan plan;
      if (algo == Algorithm::kAuto) {
        // Zero-I/O planning; corrections come from the planner's (shared,
        // effectively frozen) feedback so every worker prices alike.
        plan = planner->Plan(query);
        if (!plan.has_choice) {
          return Status::FailedPrecondition(
              "No structure available to answer the query");
        }
        algo = plan.chosen;
      }
      const IoStats before = thread_io();
      Stopwatch watch;
      QueryStats local;
      StatusOr<std::vector<QueryResult>> answer(std::vector<QueryResult>{});
      switch (algo) {
        case Algorithm::kRTree:
          if (db_->rtree() == nullptr) {
            return Status::FailedPrecondition("R-Tree was not built");
          }
          answer = RTreeTopK(*db_->rtree(), objects, tokenizer, query, &local);
          break;
        case Algorithm::kIio:
          if (db_->inverted_index() == nullptr) {
            return Status::FailedPrecondition("Inverted index was not built");
          }
          answer = IioTopK(*db_->inverted_index(), objects, tokenizer, query,
                           &local);
          break;
        case Algorithm::kIr2:
          if (db_->ir2_tree() == nullptr) {
            return Status::FailedPrecondition("IR2-Tree was not built");
          }
          answer = Ir2TopK(*db_->ir2_tree(), objects, tokenizer, query,
                           &local, &scratch);
          break;
        case Algorithm::kMir2:
          if (db_->mir2_tree() == nullptr) {
            return Status::FailedPrecondition("MIR2-Tree was not built");
          }
          answer = Ir2TopK(*db_->mir2_tree(), objects, tokenizer, query,
                           &local, &scratch);
          break;
        case Algorithm::kKcTree:
          if (db_->kc_tree() == nullptr) {
            return Status::FailedPrecondition("KC-Tree was not built");
          }
          answer = KcTopK(*db_->kc_tree(), objects, tokenizer, query,
                          &local, &scratch);
          break;
        case Algorithm::kAuto:
          return Status::Internal("Planner chose kAuto");
      }
      IR2_RETURN_IF_ERROR(answer.status());
      *results = std::move(answer).value();
      local.seconds = watch.ElapsedSeconds();
      local.io = thread_io() - before;
      // No speculation in batch mode: price the demand reads only, the
      // same figure a serial prefetch-off run reports.
      local.simulated_disk_ms = model.Ms(local.io);
      if (options_.algorithm == Algorithm::kAuto) {
        planner->RecordOutcome(plan, local.simulated_disk_ms,
                               &local_feedback);
      }
      *stats = local;
      return Status::Ok();
    };

    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) {
        break;
      }
      Status status = run_one(queries[i], &out.results[i], &out.per_query[i]);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error = std::move(status);
        }
        failed.store(true, std::memory_order_relaxed);
        break;
      }
      batch_queries->Add();
      batch_latency->Record(out.per_query[i].seconds * 1000.0);
    }
    for (const auto& pool : local_pools) {
      pool_accum += pool->Stats();
    }
    obs::MetricsRegistry::Global().MergeFrom(local_metrics);
    if (options_.algorithm == Algorithm::kAuto) {
      planner->feedback().MergeFrom(local_feedback);
    }
    // The ScopedReadPool overrides must unwind LIFO; a vector destroys
    // front-to-back, so pop them explicitly.
    while (!scopes.empty()) {
      scopes.pop_back();
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    out.pool_stats += pool_accum;
  };

  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  if (!first_error.ok()) {
    return first_error;
  }
  return out;
}

StatusOr<BatchResults> BatchExecutor::Run(
    std::span<const DistanceFirstQuery> queries) const {
  if (db_ != nullptr) {
    return RunDatabase(queries);
  }
  BatchResults out;
  out.results.resize(queries.size());
  out.per_query.resize(queries.size());
  if (queries.empty()) {
    return out;
  }

  size_t num_threads = options_.num_threads;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, queries.size());

  BlockDevice* tree_device = tree_->pool()->device();
  BlockDevice* object_device = objects_->device();

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status first_error = Status::Ok();

  auto thread_io = [&]() {
    // The tree and object file usually live on distinct devices (the
    // database gives every structure its own); when they share one, count
    // it once.
    IoStats io = tree_device->thread_stats();
    if (object_device != tree_device) {
      io += object_device->thread_stats();
    }
    return io;
  };

  std::mutex stats_mu;

  auto run_one = [&](BufferPool* local_pool, Ir2QueryScratch* scratch,
                     BufferPoolStats* pool_accum,
                     const DistanceFirstQuery& query,
                     std::vector<QueryResult>* results,
                     QueryStats* stats) -> Status {
    if (options_.cold_queries) {
      // Clear() resets the pool's counters (a new cold epoch), so bank the
      // closing epoch's counts first.
      *pool_accum += local_pool->Stats();
      IR2_RETURN_IF_ERROR(local_pool->Clear());
      if (NodeCache* cache = tree_->node_cache()) {
        // A decoded-node cache would also short-circuit the cold device
        // reads; drop it so each query's disk counts stay a pure function
        // of the query.
        cache->Clear();
      }
      tree_device->ResetThreadCursor();
      if (object_device != tree_device) {
        object_device->ResetThreadCursor();
      }
    }
    const IoStats before = thread_io();
    Stopwatch watch;
    QueryStats local;
    IR2_ASSIGN_OR_RETURN(*results,
                         Ir2TopK(*tree_, *objects_, *tokenizer_, query,
                                 &local, scratch));
    local.seconds = watch.ElapsedSeconds();
    local.io = thread_io() - before;
    *stats = local;
    return Status::Ok();
  };

  auto worker = [&]() {
    // Private node cache over the shared device for the life of the worker;
    // every LoadNode this thread issues against the tree reads through it.
    BufferPool local_pool(tree_device, options_.pool_blocks);
    ScopedReadPool scope(tree_, &local_pool);
    // Reusable traversal buffers: the NN priority queue, keyword hashes and
    // query signatures stop allocating once their capacities have grown.
    Ir2QueryScratch scratch;
    BufferPoolStats pool_accum;
    // Private registry so the batch counters cost no cross-worker
    // coordination while queries run; merged into the global registry once
    // when the worker drains.
    obs::MetricsRegistry local_metrics;
    obs::Counter* batch_queries = local_metrics.GetCounter(
        "ir2_batch_queries_total", "Queries completed by batch workers.");
    obs::Histogram* batch_latency = local_metrics.GetHistogram(
        "ir2_batch_query_latency_ms",
        "Per-query wall-clock latency inside batch workers (ms).");
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) {
        break;
      }
      Status status = run_one(&local_pool, &scratch, &pool_accum, queries[i],
                              &out.results[i], &out.per_query[i]);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) {
          first_error = std::move(status);
        }
        failed.store(true, std::memory_order_relaxed);
        break;
      }
      batch_queries->Add();
      batch_latency->Record(out.per_query[i].seconds * 1000.0);
    }
    pool_accum += local_pool.Stats();
    obs::MetricsRegistry::Global().MergeFrom(local_metrics);
    std::lock_guard<std::mutex> lock(stats_mu);
    out.pool_stats += pool_accum;
  };

  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  if (!first_error.ok()) {
    return first_error;
  }
  return out;
}

}  // namespace ir2
