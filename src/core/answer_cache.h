#ifndef IR2TREE_CORE_ANSWER_CACHE_H_
#define IR2TREE_CORE_ANSWER_CACHE_H_

// Seam between the core query engine and the serving tier's semantic
// result cache (serving/result_cache.h). The core cannot depend on serving,
// so SpatialKeywordDatabase::QueryAuto consults this abstract hook; the
// concrete implementation lives above it.
//
// Contract (docs/performance.md, result-cache chapter): an entry caches the
// exact top-K answer around an original query point p with covering radius
// r_K (the K-th distance). A later query (p', k') over the same normalized
// keyword set is answered exactly from the entry when the re-ranked k'-th
// distance d'_k' satisfies
//
//     d'_k' < r_K - dist(p, p')
//
// (strict — objects tied at exactly r_K may be absent from the entry), or
// unconditionally when the entry is exhaustive (it holds every matching
// object in the database), or when p' == p and k' <= K (the cached list is
// the same total order's prefix). Entries carry the mutation epoch they
// were filled under and are rejected once the database mutates.

#include <cstdint>
#include <span>
#include <vector>

#include "core/query.h"
#include "obs/explain.h"

namespace ir2 {

// The reuse decision for one lookup, with the inequality's actual numbers —
// surfaced by EXPLAIN so a hit is auditable, not just observable.
struct CacheReuseCheck {
  bool attempted = false;    // An entry existed for the keyword set.
  bool hit = false;          // Served from cache.
  bool exact = false;        // p' == p (prefix reuse, no inequality needed).
  bool exhaustive = false;   // Entry holds every match in the database.
  bool stale = false;        // Entry rejected: mutation epoch moved.
  double center_shift = 0.0;   // dist(p, p').
  double cached_radius = 0.0;  // r_K of the entry consulted.
  double kth_distance = 0.0;   // Re-ranked k'-th distance d'_k'.
  uint64_t cached_results = 0; // Objects held by the entry (K).
};

// Implemented by serving::ResultCache. All methods must be thread-safe:
// warm-regime queries consult the hook concurrently.
class AnswerCacheHook {
 public:
  virtual ~AnswerCacheHook() = default;

  // Attempts to answer `q` (keywords already normalized to the canonical
  // form) from the cache. `epoch` is the caller's current mutation epoch;
  // entries filled under a different epoch are rejected and dropped. On a
  // provable hit, fills *out with the exact top-k' (re-ranked around
  // q.point, sorted by (distance, object id, ref)) and returns true.
  // `check` (optional) receives the reuse decision either way.
  virtual bool TryServe(const DistanceFirstQuery& q, uint64_t epoch,
                        std::vector<QueryResult>* out,
                        CacheReuseCheck* check) = 0;

  // Admission policy after a miss: the K > q.k this keyword set should be
  // over-fetched to so the refill can serve future perturbed repeats, or 0
  // when the set is too cold to cache. Frequency-aware: hot keyword sets
  // (per-set EWMA) earn a larger K.
  virtual uint32_t OverfetchK(const DistanceFirstQuery& q) = 0;

  // Stores the over-fetched answer for `q` (the same normalized query given
  // to OverfetchK, still with its original k; `fetched_k` is the K actually
  // executed). `results` is the exact top-fetched_k; fewer than fetched_k
  // results means the database holds fewer matches, making the entry
  // exhaustive. `epoch` must be the epoch captured before the query ran, so
  // a mutation racing the fill leaves a stale (rejectable) entry, never a
  // wrong one.
  virtual void Admit(const DistanceFirstQuery& q, uint32_t fetched_k,
                     uint64_t epoch, std::span<const QueryResult> results) = 0;
};

// Appends a "Result cache" EXPLAIN section showing the reuse inequality's
// actual numbers (d'_k' < r_K - dist(p, p')) and the verdict. Shared by the
// single-database and sharded EXPLAIN paths. Defined in core/database.cc.
void AddCacheReuseSection(obs::ExplainReport* report,
                          const CacheReuseCheck& check);

}  // namespace ir2

#endif  // IR2TREE_CORE_ANSWER_CACHE_H_
