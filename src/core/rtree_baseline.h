#ifndef IR2TREE_CORE_RTREE_BASELINE_H_
#define IR2TREE_CORE_RTREE_BASELINE_H_

#include <vector>

#include "common/status_or.h"
#include "core/query.h"
#include "rtree/incremental_nn.h"
#include "rtree/rtree.h"
#include "storage/object_store.h"
#include "text/tokenizer.h"

namespace ir2 {

// The paper's first baseline (Section V-A): incremental NN over a plain
// R-Tree; every returned neighbor's object is fetched and its text checked
// against the query keywords until k objects pass. Potentially retrieves
// many "useless" objects — in the worst case the whole dataset. `prefetch`
// (optional) enables speculative node/object reads; results and pool-level
// demand accounting are invariant to it.
StatusOr<std::vector<QueryResult>> RTreeTopK(const RTreeBase& tree,
                                             const ObjectStore& objects,
                                             const Tokenizer& tokenizer,
                                             const DistanceFirstQuery& query,
                                             QueryStats* stats = nullptr,
                                             NNPrefetchOptions prefetch = {});

}  // namespace ir2

#endif  // IR2TREE_CORE_RTREE_BASELINE_H_
