#ifndef IR2TREE_CORE_PLANNER_H_
#define IR2TREE_CORE_PLANNER_H_

// Cost-based query planner: picks the cheapest of the five distance-first
// algorithms per query (Algorithm::kAuto).
//
// The paper's experiments show no single algorithm dominates — IIO wins
// when the keyword conjunction is rare (short posting lists, tiny
// intersection), IR2/MIR2 win when it is frequent (the NN frontier finds k
// matches almost immediately), and the gap is an order of magnitude in
// block accesses. The planner prices each candidate under the same
// DiskModel that prices QueryStats.simulated_disk_ms, using only in-memory
// statistics:
//
//   - per-keyword document frequencies and posting-list block spans from
//     the inverted index's resident dictionary,
//   - the conjunction selectivity (core/stats.h — shared with the
//     object-file sweep decision),
//   - the superimposed-coding false-positive model: a signature test at a
//     level whose payload bit density is d passes a non-matching entry
//     with probability d^w, w = expected distinct bits of the query
//     signature,
//   - per-level tree shape (node counts, blocks per node, payload
//     density) snapshotted once from rtree/tree_stats.h at Build/Open.
//
// Planning performs zero device reads (pinned by
// cold_regime_regression_test), so auto mode's per-query disk profile is
// exactly the chosen algorithm's.
//
// A feedback loop corrects the static model online: per
// (algorithm × selectivity-bucket) EWMAs of the observed-over-estimated
// simulated-disk-ms ratio, updated after every executed auto query.
// Updates are lock-free atomics, so BatchExecutor workers can record into
// worker-private PlannerFeedback instances merged once on drain — the same
// discipline as their private obs::MetricsRegistry. See docs/planner.md.

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

#include "core/query.h"
#include "core/stats.h"
#include "storage/block_device.h"
#include "storage/disk_model.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace ir2 {

// The five executable algorithms plus kAuto ("let the planner choose").
// kAuto is only a dispatch mode: QueryPlan.chosen is always one of the
// first five. kKcTree sits between kMir2 and kAuto so the first four
// indexes (and everything serialized as their integer values) are
// unchanged from the four-algorithm planner.
enum class Algorithm { kRTree, kIio, kIr2, kMir2, kKcTree, kAuto };

inline constexpr size_t kNumPlannableAlgorithms = 5;

// "rtree" / "iio" / "ir2" / "mir2" / "kctree" / "auto".
const char* AlgorithmName(Algorithm algo);
// Inverse of AlgorithmName; returns false (and leaves *out alone) on an
// unknown name.
bool ParseAlgorithm(std::string_view name, Algorithm* out);

// One level of a tree as the planner sees it. levels[0] is the leaf level,
// back() the root. A plain R-Tree level has signature_bits == 0, which the
// false-positive model treats as "every entry passes" (fp = 1) — the
// R-Tree baseline is priced as the degenerate IR2-Tree with no filter.
struct PlannerLevel {
  uint64_t nodes = 0;
  uint64_t entries = 0;
  double blocks_per_node = 1.0;
  double payload_density = 0.0;  // Fraction of payload bits set.
  uint32_t signature_bits = 0;   // 0 = no signature filter.
  uint32_t hashes_per_word = 0;
};

struct PlannerTreeShape {
  std::vector<PlannerLevel> levels;
  bool present() const { return !levels.empty(); }
};

// Everything the static cost model needs, snapshotted once at Build/Open
// (ComputeTreeStats walks every node, so it must never run per query).
struct PlannerInputs {
  uint64_t num_objects = 0;
  double avg_blocks_per_object = 1.0;
  uint64_t object_file_blocks = 0;
  bool iio_present = false;
  // Posting-list bytes per entry used to estimate block spans when the
  // real dictionary geometry is unavailable (cost-model unit tests feed
  // synthetic document frequencies); d-gap varints average ~2.5 bytes.
  double iio_bytes_per_posting = 2.5;
  // Selectivity assumed per keyword when no inverted index exists to ask
  // (build_iio = false): keyword frequencies are unknowable, so every
  // keyword is assumed to match this fraction of the corpus.
  double default_keyword_selectivity = 0.01;
  DiskModelParams disk_model;
  size_t block_size = kDefaultBlockSize;
  PlannerTreeShape rtree;
  PlannerTreeShape ir2;
  PlannerTreeShape mir2;
  PlannerTreeShape kc;
  // KC-Tree vocabulary snapshot: (HashWord(word), document frequency) of
  // every hot word, sorted by hash for binary search at plan time, plus
  // the bitmap/cold-signature split of the payload. The KC cost model
  // prices hot query keywords through exact per-subtree containment
  // probabilities (no false-positive term) and only the cold tail through
  // the superimposed-coding model.
  std::vector<std::pair<uint64_t, uint64_t>> kc_hot_word_dfs;
  uint32_t kc_hot_bits = 0;
  uint32_t kc_cold_bits = 0;
  uint32_t kc_cold_hashes = 0;
};

// Cost the planner assigned one algorithm for one query.
struct PlanCandidate {
  Algorithm algo = Algorithm::kAuto;
  bool feasible = false;  // Structure built and able to answer the query.
  // DiskModel-priced estimate from the static model alone.
  double static_ms = std::numeric_limits<double>::infinity();
  // static_ms × the feedback correction for (algo, selectivity bucket) —
  // the number the decision minimizes.
  double predicted_ms = std::numeric_limits<double>::infinity();
};

struct QueryPlan {
  // False when nothing can answer the query (no structure built).
  bool has_choice = false;
  Algorithm chosen = Algorithm::kIr2;
  int bucket = 0;  // Selectivity bucket the feedback was read from.
  ConjunctionEstimate estimate;
  std::array<PlanCandidate, kNumPlannableAlgorithms> candidates{};
  double chosen_predicted_ms = std::numeric_limits<double>::infinity();
  // Cheapest predicted cost among the feasible candidates NOT chosen. An
  // executed query whose observed cost exceeds this was a misprediction:
  // in hindsight some rejected plan was predicted to do better.
  double best_rejected_predicted_ms = std::numeric_limits<double>::infinity();

  const PlanCandidate& Candidate(Algorithm algo) const {
    return candidates[static_cast<size_t>(algo)];
  }
};

// Online correction of the static model: one EWMA of the ratio
// observed_ms / static_ms per (algorithm × selectivity bucket). All
// updates are lock-free and safe from concurrent BatchExecutor workers;
// workers normally record into a private instance and MergeFrom it into
// the planner's on drain, mirroring the private-MetricsRegistry pattern.
class PlannerFeedback {
 public:
  static constexpr int kBuckets = 8;   // floor(-log10(selectivity)), clamped.
  static constexpr double kAlpha = 0.3;  // EWMA weight of the newest sample.

  // Folds one executed query into the (algo, bucket) EWMA. The first
  // sample seeds the ratio directly so a cold cell converges immediately.
  void Record(Algorithm algo, int bucket, double static_ms,
              double observed_ms);

  // Multiplier applied to static_ms when predicting; 1.0 for a cell that
  // has never observed a query.
  double Correction(Algorithm algo, int bucket) const;
  uint64_t Count(Algorithm algo, int bucket) const;

  // Folds `other` in, weighting each cell's ratio by its sample counts.
  void MergeFrom(const PlannerFeedback& other);
  // Forgets everything (benches reset between thread points so decisions
  // stay deterministic across runs).
  void Reset();

 private:
  struct Cell {
    std::atomic<double> ratio{1.0};
    std::atomic<uint64_t> count{0};
  };
  Cell& CellFor(Algorithm algo, int bucket) {
    return cells_[static_cast<size_t>(algo)][static_cast<size_t>(bucket)];
  }
  const Cell& CellFor(Algorithm algo, int bucket) const {
    return cells_[static_cast<size_t>(algo)][static_cast<size_t>(bucket)];
  }
  std::array<std::array<Cell, kBuckets>, kNumPlannableAlgorithms> cells_;
};

class QueryPlanner {
 public:
  // `index` (nullable) supplies document frequencies and posting geometry;
  // `tokenizer` normalizes query keywords identically to the execution
  // paths. Both must outlive the planner.
  QueryPlanner(PlannerInputs inputs, const InvertedIndex* index,
               const Tokenizer* tokenizer);

  // Prices every candidate and picks the cheapest feasible one. Pure
  // arithmetic plus in-memory dictionary lookups — no I/O. Corrections
  // are read from `corrections` if given, else from this planner's own
  // feedback. Bumps the ir2_plan_chosen_* counter of the winner.
  QueryPlan Plan(const DistanceFirstQuery& q,
                 const PlannerFeedback* corrections = nullptr) const;

  // Feeds the executed plan's observed simulated-disk time back into
  // `sink` (default: this planner's feedback) and counts a misprediction
  // if a rejected candidate was predicted to beat what actually happened.
  void RecordOutcome(const QueryPlan& plan, double observed_ms,
                     PlannerFeedback* sink = nullptr);

  // Static (feedback-free) cost of one algorithm, exposed for the cost
  // model's unit tests. `posting_blocks` (parallel to est.dfs) may be
  // empty, in which case spans are estimated from the frequencies.
  // `keyword_hashes` (parallel to est.dfs) lets the KC-Tree model split
  // the query into hot and cold keywords; when empty every keyword is
  // priced as cold (the conservative floor).
  double StaticCost(Algorithm algo, uint32_t k, const ConjunctionEstimate& est,
                    std::span<const uint64_t> posting_blocks = {},
                    std::span<const uint64_t> keyword_hashes = {}) const;

  // Probability that the signature test at `level` passes an entry whose
  // subtree matches none of the `num_keywords` query keywords:
  // density^weight, weight = expected distinct bits the query sets.
  // 1.0 when the level carries no signatures (plain R-Tree).
  static double SignatureFalsePositiveRate(const PlannerLevel& level,
                                           size_t num_keywords);

  static int SelectivityBucket(double selectivity);

  PlannerFeedback& feedback() { return feedback_; }
  const PlannerInputs& inputs() const { return inputs_; }

 private:
  double TreeCost(const PlannerTreeShape& shape, uint32_t k,
                  const ConjunctionEstimate& est) const;
  double IioCost(const ConjunctionEstimate& est,
                 std::span<const uint64_t> posting_blocks) const;
  double KcCost(uint32_t k, const ConjunctionEstimate& est,
                std::span<const uint64_t> keyword_hashes) const;

  PlannerInputs inputs_;
  const InvertedIndex* index_;
  const Tokenizer* tokenizer_;
  PlannerFeedback feedback_;
};

}  // namespace ir2

#endif  // IR2TREE_CORE_PLANNER_H_
