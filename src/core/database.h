#ifndef IR2TREE_CORE_DATABASE_H_
#define IR2TREE_CORE_DATABASE_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status_or.h"
#include "core/answer_cache.h"
#include "core/ir2_tree.h"
#include "core/kc_tree.h"
#include "obs/explain.h"
#include "core/mir2_tree.h"
#include "core/planner.h"
#include "core/query.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_model.h"
#include "storage/io_scheduler.h"
#include "storage/object_store.h"
#include "text/inverted_index.h"
#include "text/ir_score.h"
#include "text/tokenizer.h"

namespace ir2 {

// Corpus statistics computed while building (Table 1 of the paper).
struct DatasetStats {
  uint64_t num_objects = 0;
  uint64_t total_tokens = 0;
  uint64_t total_distinct_words = 0;  // Summed per object.
  uint64_t vocabulary_size = 0;
  uint64_t object_file_bytes = 0;
  uint64_t object_file_blocks = 0;

  double AvgDistinctWordsPerObject() const {
    return num_objects ? static_cast<double>(total_distinct_words) /
                             static_cast<double>(num_objects)
                       : 0.0;
  }
  double AvgDocLen() const {
    return num_objects ? static_cast<double>(total_tokens) /
                             static_cast<double>(num_objects)
                       : 0.0;
  }
  // Disk blocks an average LoadObject touches (>= 1; grows with record size
  // and block-boundary straddling).
  double AvgBlocksPerObject() const;
};

struct DatabaseOptions {
  // Uniform signature of the IR2-Tree (and leaf level of the MIR2-Tree).
  // The paper's defaults: 189 bytes (Hotels), 8 bytes (Restaurants), k=3.
  SignatureConfig ir2_signature{/*bits=*/1512, /*hashes_per_word=*/3};

  // Per-level widths of the MIR2-Tree; leave empty to derive from the
  // dataset statistics with DeriveMultilevelScheme.
  MultilevelScheme mir2_scheme;

  RTreeOptions tree_options;

  // Words dropped at indexing and querying (see Tokenizer). Empty = index
  // every word; pass EnglishStopwords() for typical text corpora.
  std::unordered_set<std::string> stopwords;

  // Posting-list storage of the inverted index (compressed by default).
  InvertedIndexOptions iio_options;

  // Buffer pool capacity (blocks) per tree. Pools keep index construction
  // fast; queries run cold when cold_queries is set.
  size_t pool_blocks = 1 << 16;

  // Drop all caches before every query so each measured query starts from a
  // cold disk, as the paper's per-query disk-access figures assume.
  bool cold_queries = true;

  // Build the trees with the STR bulk loader instead of repeated Insert —
  // much faster and better clustered. Off by default: the paper's trees
  // are built incrementally, and the figures are reproduced that way.
  bool bulk_load = false;
  double bulk_fill_fraction = 0.8;

  bool build_rtree = true;
  bool build_ir2 = true;
  bool build_mir2 = true;
  bool build_iio = true;
  // Keyword-clustered hybrid tree (core/kc_tree.h): exact per-entry bitmaps
  // for the hot vocabulary, a shared superimposed signature for the cold
  // tail. The fifth planner candidate.
  bool build_kc = true;
  // Hot-vocabulary clustering knobs; cold_signature{bits=0} inherits
  // ir2_signature for the cold-tail region.
  KcVocabularyOptions kc_vocabulary;
  // Cost-based planner behind Algorithm::kAuto (docs/planner.md). Built at
  // Build/Open time from a one-time tree-stats snapshot; per-query planning
  // is pure in-memory arithmetic.
  bool build_planner = true;

  // ---- Cold-path I/O engine (see docs/performance.md) ----

  // Speculative prefetching: traversals hand likely-next node/object blocks
  // to per-structure IoSchedulers, whose coalesced reads complete into the
  // pools ahead of the demand reads. Results and demand (pool-level)
  // accounting are invariant; QueryStats splits the physical I/O into
  // io (demand thread) and speculative_io (prefetch threads). When off,
  // the object/IIO pools run in bypass mode (capacity 0), which keeps
  // every physical disk count byte-identical to the pre-prefetch engine.
  bool prefetch = false;
  // Also speculate on leaf-candidate *object* blocks during NN traversals.
  // Off by default: a top-k search strands the candidates it never pops,
  // and under the disk-time model stranded random reads are pure loss —
  // object speculation only pays when candidate verification loads nearly
  // everything enqueued (see docs/performance.md). The IIO algorithm,
  // which verifies every intersection candidate, always prefetches its
  // object blocks when `prefetch` is on, independent of this flag.
  bool prefetch_objects = false;
  // Scheduler tuning; set scheduler.synchronous for deterministic benches.
  IoSchedulerOptions scheduler;

  // Parameters of the simulated disk behind QueryStats.simulated_disk_ms.
  // Defaults model the paper's testbed drive (see DiskModelParams); pass
  // NvmeDiskModelParams() to price I/O like a modern SSD instead.
  DiskModelParams disk_model;

  // ---- Real-file backend (Save/Open; see docs/performance.md) ----

  // Applied to every FileBlockDevice an Open()ed database creates —
  // direct_io asks for O_DIRECT (with graceful fallback on filesystems
  // that refuse), so cold-regime runs measure the device, not the page
  // cache. Save() always writes buffered and ends with a Sync() barrier.
  FileBlockDeviceOptions file_device;

  // When > 0, every IoScheduler drives its coalesced prefetch runs through
  // a submission/completion AsyncIoBackend with this many worker threads
  // (io_uring-shaped; storage/async_io.h), overlapping run reads against
  // real files. 0 (default) keeps the deterministic single-worker inline
  // path the golden tests pin.
  uint32_t async_io_threads = 0;

  // After an incremental (non-bulk) build, rewrite each tree with
  // CompactInto so every node's children occupy one contiguous DFS run —
  // the layout BulkLoad now produces natively — turning frontier
  // prefetches into sequential sweeps. Structure and per-query node/object
  // access *counts* are unchanged; only block placement (and therefore the
  // random/sequential split and simulated time) moves.
  bool locality_placement = false;
};

// Owns one dataset plus every index structure of the paper and exposes the
// four query algorithms over them. This is the facade the examples and the
// benchmark harness use; each structure lives on its own MemoryBlockDevice
// so per-structure disk traffic and sizes (Table 2) can be reported.
class SpatialKeywordDatabase {
 public:
  static StatusOr<std::unique_ptr<SpatialKeywordDatabase>> Build(
      std::span<const StoredObject> objects, const DatabaseOptions& options);

  // Persists every structure plus a manifest into `directory` (created if
  // needed; any previous contents are overwritten). The database remains
  // usable afterwards.
  Status Save(const std::string& directory);

  // Opens a database previously Save()d. Indexes are file-backed; queries
  // perform real file I/O. Structural options come from the manifest; the
  // one-argument form also takes every runtime option (cold_queries,
  // prefetch, schedulers, disk model, file-device flags) from the manifest
  // or its defaults.
  static StatusOr<std::unique_ptr<SpatialKeywordDatabase>> Open(
      const std::string& directory);

  // As above, but runtime options — cold_queries, prefetch /
  // prefetch_objects, scheduler, disk_model, file_device, async_io_threads,
  // pool_blocks — are taken from `runtime` instead, so one saved directory
  // can serve cold and warm regimes, O_DIRECT on or off, with or without
  // async prefetch. Structural fields (signatures, tree geometry, which
  // indexes exist) still come from the manifest.
  static StatusOr<std::unique_ptr<SpatialKeywordDatabase>> Open(
      const std::string& directory, const DatabaseOptions& runtime);

  ~SpatialKeywordDatabase();
  SpatialKeywordDatabase(const SpatialKeywordDatabase&) = delete;
  SpatialKeywordDatabase& operator=(const SpatialKeywordDatabase&) = delete;

  // ---- The four distance-first algorithms (Section V) ----
  StatusOr<std::vector<QueryResult>> QueryRTree(const DistanceFirstQuery& q,
                                                QueryStats* stats = nullptr);
  StatusOr<std::vector<QueryResult>> QueryIio(const DistanceFirstQuery& q,
                                              QueryStats* stats = nullptr);
  StatusOr<std::vector<QueryResult>> QueryIr2(const DistanceFirstQuery& q,
                                              QueryStats* stats = nullptr);
  StatusOr<std::vector<QueryResult>> QueryMir2(const DistanceFirstQuery& q,
                                               QueryStats* stats = nullptr);
  // Fifth algorithm: KC-Tree traversal (exact hot-word bitmaps + cold-tail
  // signature; see docs/planner.md).
  StatusOr<std::vector<QueryResult>> QueryKc(const DistanceFirstQuery& q,
                                             QueryStats* stats = nullptr);

  // ---- Cost-based auto mode (see docs/planner.md) ----
  // Prices every candidate algorithm under the DiskModel (zero I/O — tree
  // shapes are snapshotted at Build/Open and keyword frequencies come from
  // the IIO's resident dictionary), executes the cheapest plan, and feeds
  // the observed simulated-disk time back into the planner's EWMA
  // corrections. `plan_out` (optional) receives the full decision.
  StatusOr<std::vector<QueryResult>> QueryAuto(const DistanceFirstQuery& q,
                                               QueryStats* stats = nullptr,
                                               QueryPlan* plan_out = nullptr);

  // Uniform dispatcher over the five fixed algorithms plus kAuto.
  StatusOr<std::vector<QueryResult>> Query(const DistanceFirstQuery& q,
                                           Algorithm algo,
                                           QueryStats* stats = nullptr);

  // ---- EXPLAIN (see docs/observability.md) ----
  // Historical spelling: EXPLAIN predates Algorithm/kAuto and kept its
  // enumerator set when the planner subsumed it.
  using ExplainAlgo = Algorithm;

  struct ExplainResult {
    // Where the query's work and simulated milliseconds went; render with
    // report.ToString().
    obs::ExplainReport report;
    QueryStats stats;
    std::vector<QueryResult> results;
    // Chrome trace-event JSON of this one query (Perfetto-loadable).
    std::string trace_json;
  };

  // Runs `q` under `algo` with a per-query tracer installed and reports
  // QueryStats, per-level pruning, pool/cache hit ratios, the
  // demand/physical/speculative I/O split, the DiskModel time breakdown,
  // and a span summary. Exactly the same execution path as the Query*
  // methods — tracing adds no I/O, so the reported counts match an
  // untraced run of the same query.
  StatusOr<ExplainResult> Explain(const DistanceFirstQuery& q,
                                  ExplainAlgo algo = ExplainAlgo::kIr2);

  // General ranking-function query (Section V-C) over the IR2- or
  // MIR2-Tree. Requires build_iio (for keyword idfs).
  StatusOr<std::vector<QueryResult>> QueryGeneral(const GeneralQuery& q,
                                                  QueryStats* stats = nullptr,
                                                  bool use_mir2 = false);

  // Pure Boolean keyword query (Section II's Ans(Q_w), no spatial
  // component): refs of every object containing all keywords, ascending.
  // Served by posting-list intersection; requires build_iio.
  StatusOr<std::vector<ObjectRef>> KeywordMatches(
      const std::vector<std::string>& keywords, QueryStats* stats = nullptr);

  // ---- Semantic result cache (core/answer_cache.h) ----
  // Installs (nullptr detaches) the answer-cache hook QueryAuto consults
  // before planning. The hook must outlive the database or be detached
  // first; the fixed-algorithm Query* methods never consult it, so cold
  // regression goldens are untouched by construction. Serving tiers that
  // cache above the scatter-gather (ShardedDatabase) leave the per-shard
  // hooks unset.
  void SetResultCache(AnswerCacheHook* hook) { result_cache_ = hook; }
  AnswerCacheHook* result_cache() const { return result_cache_; }
  // Sum of the mutation counters (RTreeBase::version) of every built tree:
  // moves whenever an Insert/Delete/BulkLoad stores a node. The NodeCache
  // invalidation rule lifted to whole answers — cached results filled under
  // an older epoch are rejected on read.
  uint64_t MutationEpoch() const;

  // ---- Measurement control ----
  // Drains in-flight prefetches, then clears every buffer pool and node
  // cache, so the next query starts from a cold simulated disk.
  Status DropCaches();
  void ResetIoStats();
  // Sum of IoStats over every device.
  IoStats AggregateIo() const;

  // ---- Introspection ----
  const DatasetStats& stats() const { return stats_; }
  const DatabaseOptions& options() const { return options_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }
  const ObjectStore& object_store() const { return *object_store_; }
  RTree* rtree() { return rtree_.get(); }
  Ir2Tree* ir2_tree() { return ir2_.get(); }
  Mir2Tree* mir2_tree() { return mir2_.get(); }
  KcTree* kc_tree() { return kc_.get(); }
  const KcVocabulary* kc_vocabulary() const { return kc_vocab_.get(); }
  InvertedIndex* inverted_index() { return iio_.get(); }
  // Cost-based planner behind Algorithm::kAuto (null iff build_planner was
  // disabled). Thread-safe: Plan and RecordOutcome may run concurrently
  // from BatchExecutor workers.
  QueryPlanner* planner() { return planner_.get(); }
  const IrScorer& scorer() const { return *scorer_; }
  // The simulated-disk cost model QueryStats.simulated_disk_ms is priced
  // under (shared by all devices; they use one block size).
  DiskModel disk_model() const { return DiskModel(options_.disk_model); }
  // Per-structure prefetch schedulers (null for structures not built).
  IoScheduler* object_scheduler() { return object_scheduler_.get(); }
  IoScheduler* rtree_scheduler() { return rtree_scheduler_.get(); }
  IoScheduler* ir2_scheduler() { return ir2_scheduler_.get(); }
  IoScheduler* mir2_scheduler() { return mir2_scheduler_.get(); }
  IoScheduler* kc_scheduler() { return kc_scheduler_.get(); }
  IoScheduler* iio_scheduler() { return iio_scheduler_.get(); }

  // Structure sizes in bytes (Table 2).
  uint64_t ObjectFileBytes() const;
  uint64_t RTreeBytes() const;
  uint64_t Ir2TreeBytes() const;
  uint64_t Mir2TreeBytes() const;
  uint64_t KcTreeBytes() const;
  uint64_t IioBytes() const;

 private:
  SpatialKeywordDatabase() = default;

  // Shared Open body. When `runtime` is non-null its runtime-class fields
  // replace the manifest's; null keeps the manifest values (legacy form).
  static StatusOr<std::unique_ptr<SpatialKeywordDatabase>> OpenImpl(
      const std::string& directory, const DatabaseOptions* runtime);

  // Creates the per-structure prefetch schedulers (plus, when
  // async_io_threads > 0, an AsyncIoBackend per pool) over the existing
  // pools and attaches the IIO streaming scheduler; shared tail of
  // Build/Open.
  void WireIoEngine();

  // Snapshots the planner's inputs (tree shapes via ComputeTreeStats —
  // which reads every node, so this runs once here, never per query) and
  // constructs the planner. Runs before ResetIoStats in Build/Open so the
  // snapshot's reads never appear in any measurement.
  Status WirePlanner();

  // QueryAuto minus the result-cache consult: plan, execute, feed back.
  StatusOr<std::vector<QueryResult>> QueryAutoPlanned(
      const DistanceFirstQuery& q, QueryStats* stats, QueryPlan* plan_out);
  // Full QueryAuto path with the reuse decision surfaced (EXPLAIN).
  StatusOr<std::vector<QueryResult>> QueryAutoCached(
      const DistanceFirstQuery& q, QueryStats* stats, QueryPlan* plan_out,
      CacheReuseCheck* check_out);

  // Shared prologue/epilogue of every query method: optional cache drop,
  // timing, three-way I/O diffing (demand / physical / speculative) and
  // simulated-time pricing.
  template <typename Fn>
  StatusOr<std::vector<QueryResult>> RunQuery(QueryStats* stats, Fn&& fn);

  // Per-calling-thread pool-level (logical demand) request counters summed
  // over every pool.
  IoStats PoolThreadIo() const;
  // Per-calling-thread physical device access counters summed over every
  // device.
  IoStats DeviceThreadIo() const;
  // Physical prefetch-thread I/O summed over every scheduler.
  IoStats SchedulerIo() const;
  // Blocks until no scheduler has work pending or in flight.
  void DrainSchedulers();

  // Scan-vs-seek speculation policy for candidate verification: when the
  // DiskModel prices one sequential sweep of the whole object file below
  // the random accesses the query's object loads are expected to cost,
  // streams the file into the object pool ahead of the demand loads. The
  // load estimate is k divided by the keyword conjunction's selectivity
  // (document frequencies from the IIO's in-memory dictionary — no I/O),
  // since verification keeps seeking until k candidates pass. A direct
  // application of the disk-time model to scheduling: once the expected
  // seeks outprice one pass over the file, the head should never come
  // back. No-op when prefetching is off or the model favors seeks.
  void MaybeSweepObjectFile(const DistanceFirstQuery& q);

  DatabaseOptions options_;
  DatasetStats stats_;
  Tokenizer tokenizer_;
  AnswerCacheHook* result_cache_ = nullptr;  // Not owned.

  // Devices first, pools second, trees third: members are destroyed in
  // reverse order, so trees flush into live pools and pools into live
  // devices. Memory-backed when Build()t, file-backed when Open()ed.
  std::unique_ptr<BlockDevice> object_device_;
  std::unique_ptr<BlockDevice> rtree_device_;
  std::unique_ptr<BlockDevice> ir2_device_;
  std::unique_ptr<BlockDevice> mir2_device_;
  std::unique_ptr<BlockDevice> kc_device_;
  std::unique_ptr<BlockDevice> iio_device_;

  // Tree pools cache nodes during construction; the object/IIO pools exist
  // for the prefetch engine and run in bypass mode (capacity 0) when
  // prefetching is off, which keeps physical disk counts byte-identical to
  // the pool-less layering.
  std::unique_ptr<BufferPool> object_pool_;
  std::unique_ptr<BufferPool> rtree_pool_;
  std::unique_ptr<BufferPool> ir2_pool_;
  std::unique_ptr<BufferPool> mir2_pool_;
  std::unique_ptr<BufferPool> kc_pool_;
  std::unique_ptr<BufferPool> iio_pool_;

  std::unique_ptr<ObjectStore> object_store_;
  std::unique_ptr<RTree> rtree_;
  std::unique_ptr<Ir2Tree> ir2_;
  std::unique_ptr<Mir2Tree> mir2_;
  // Vocabulary before the tree: the tree holds a pointer into it, so the
  // reverse destruction order keeps the vocabulary alive longer.
  std::unique_ptr<KcVocabulary> kc_vocab_;
  std::unique_ptr<KcTree> kc_;
  std::unique_ptr<InvertedIndex> iio_;
  std::unique_ptr<IrScorer> scorer_;
  std::unique_ptr<QueryPlanner> planner_;

  // Async read backends (one per pool when async_io_threads > 0). Declared
  // before the schedulers so they are destroyed after them — a scheduler's
  // worker may be blocked in Submit/Reap on its backend until it stops.
  std::vector<std::unique_ptr<AsyncIoBackend>> async_backends_;

  // Schedulers last: destroyed first, so their worker threads stop touching
  // the pools before anything above is torn down.
  std::unique_ptr<IoScheduler> object_scheduler_;
  std::unique_ptr<IoScheduler> rtree_scheduler_;
  std::unique_ptr<IoScheduler> ir2_scheduler_;
  std::unique_ptr<IoScheduler> mir2_scheduler_;
  std::unique_ptr<IoScheduler> kc_scheduler_;
  std::unique_ptr<IoScheduler> iio_scheduler_;
};

}  // namespace ir2

#endif  // IR2TREE_CORE_DATABASE_H_
