#ifndef IR2TREE_CORE_DATABASE_H_
#define IR2TREE_CORE_DATABASE_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status_or.h"
#include "core/ir2_tree.h"
#include "core/mir2_tree.h"
#include "core/query.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/object_store.h"
#include "text/inverted_index.h"
#include "text/ir_score.h"
#include "text/tokenizer.h"

namespace ir2 {

// Corpus statistics computed while building (Table 1 of the paper).
struct DatasetStats {
  uint64_t num_objects = 0;
  uint64_t total_tokens = 0;
  uint64_t total_distinct_words = 0;  // Summed per object.
  uint64_t vocabulary_size = 0;
  uint64_t object_file_bytes = 0;
  uint64_t object_file_blocks = 0;

  double AvgDistinctWordsPerObject() const {
    return num_objects ? static_cast<double>(total_distinct_words) /
                             static_cast<double>(num_objects)
                       : 0.0;
  }
  double AvgDocLen() const {
    return num_objects ? static_cast<double>(total_tokens) /
                             static_cast<double>(num_objects)
                       : 0.0;
  }
  // Disk blocks an average LoadObject touches (>= 1; grows with record size
  // and block-boundary straddling).
  double AvgBlocksPerObject() const;
};

struct DatabaseOptions {
  // Uniform signature of the IR2-Tree (and leaf level of the MIR2-Tree).
  // The paper's defaults: 189 bytes (Hotels), 8 bytes (Restaurants), k=3.
  SignatureConfig ir2_signature{/*bits=*/1512, /*hashes_per_word=*/3};

  // Per-level widths of the MIR2-Tree; leave empty to derive from the
  // dataset statistics with DeriveMultilevelScheme.
  MultilevelScheme mir2_scheme;

  RTreeOptions tree_options;

  // Words dropped at indexing and querying (see Tokenizer). Empty = index
  // every word; pass EnglishStopwords() for typical text corpora.
  std::unordered_set<std::string> stopwords;

  // Posting-list storage of the inverted index (compressed by default).
  InvertedIndexOptions iio_options;

  // Buffer pool capacity (blocks) per tree. Pools keep index construction
  // fast; queries run cold when cold_queries is set.
  size_t pool_blocks = 1 << 16;

  // Drop all caches before every query so each measured query starts from a
  // cold disk, as the paper's per-query disk-access figures assume.
  bool cold_queries = true;

  // Build the trees with the STR bulk loader instead of repeated Insert —
  // much faster and better clustered. Off by default: the paper's trees
  // are built incrementally, and the figures are reproduced that way.
  bool bulk_load = false;
  double bulk_fill_fraction = 0.8;

  bool build_rtree = true;
  bool build_ir2 = true;
  bool build_mir2 = true;
  bool build_iio = true;
};

// Owns one dataset plus every index structure of the paper and exposes the
// four query algorithms over them. This is the facade the examples and the
// benchmark harness use; each structure lives on its own MemoryBlockDevice
// so per-structure disk traffic and sizes (Table 2) can be reported.
class SpatialKeywordDatabase {
 public:
  static StatusOr<std::unique_ptr<SpatialKeywordDatabase>> Build(
      std::span<const StoredObject> objects, const DatabaseOptions& options);

  // Persists every structure plus a manifest into `directory` (created if
  // needed; any previous contents are overwritten). The database remains
  // usable afterwards.
  Status Save(const std::string& directory);

  // Opens a database previously Save()d. Indexes are file-backed; queries
  // perform real file I/O.
  static StatusOr<std::unique_ptr<SpatialKeywordDatabase>> Open(
      const std::string& directory);

  ~SpatialKeywordDatabase();
  SpatialKeywordDatabase(const SpatialKeywordDatabase&) = delete;
  SpatialKeywordDatabase& operator=(const SpatialKeywordDatabase&) = delete;

  // ---- The four distance-first algorithms (Section V) ----
  StatusOr<std::vector<QueryResult>> QueryRTree(const DistanceFirstQuery& q,
                                                QueryStats* stats = nullptr);
  StatusOr<std::vector<QueryResult>> QueryIio(const DistanceFirstQuery& q,
                                              QueryStats* stats = nullptr);
  StatusOr<std::vector<QueryResult>> QueryIr2(const DistanceFirstQuery& q,
                                              QueryStats* stats = nullptr);
  StatusOr<std::vector<QueryResult>> QueryMir2(const DistanceFirstQuery& q,
                                               QueryStats* stats = nullptr);

  // General ranking-function query (Section V-C) over the IR2- or
  // MIR2-Tree. Requires build_iio (for keyword idfs).
  StatusOr<std::vector<QueryResult>> QueryGeneral(const GeneralQuery& q,
                                                  QueryStats* stats = nullptr,
                                                  bool use_mir2 = false);

  // Pure Boolean keyword query (Section II's Ans(Q_w), no spatial
  // component): refs of every object containing all keywords, ascending.
  // Served by posting-list intersection; requires build_iio.
  StatusOr<std::vector<ObjectRef>> KeywordMatches(
      const std::vector<std::string>& keywords, QueryStats* stats = nullptr);

  // ---- Measurement control ----
  Status DropCaches();
  void ResetIoStats();
  // Sum of IoStats over every device.
  IoStats AggregateIo() const;

  // ---- Introspection ----
  const DatasetStats& stats() const { return stats_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }
  const ObjectStore& object_store() const { return *object_store_; }
  RTree* rtree() { return rtree_.get(); }
  Ir2Tree* ir2_tree() { return ir2_.get(); }
  Mir2Tree* mir2_tree() { return mir2_.get(); }
  InvertedIndex* inverted_index() { return iio_.get(); }
  const IrScorer& scorer() const { return *scorer_; }

  // Structure sizes in bytes (Table 2).
  uint64_t ObjectFileBytes() const;
  uint64_t RTreeBytes() const;
  uint64_t Ir2TreeBytes() const;
  uint64_t Mir2TreeBytes() const;
  uint64_t IioBytes() const;

 private:
  SpatialKeywordDatabase() = default;

  // Shared prologue/epilogue of every query method: optional cache drop,
  // timing, I/O diffing.
  template <typename Fn>
  StatusOr<std::vector<QueryResult>> RunQuery(QueryStats* stats, Fn&& fn);

  DatabaseOptions options_;
  DatasetStats stats_;
  Tokenizer tokenizer_;

  // Devices first, pools second, trees third: members are destroyed in
  // reverse order, so trees flush into live pools and pools into live
  // devices. Memory-backed when Build()t, file-backed when Open()ed.
  std::unique_ptr<BlockDevice> object_device_;
  std::unique_ptr<BlockDevice> rtree_device_;
  std::unique_ptr<BlockDevice> ir2_device_;
  std::unique_ptr<BlockDevice> mir2_device_;
  std::unique_ptr<BlockDevice> iio_device_;

  std::unique_ptr<BufferPool> rtree_pool_;
  std::unique_ptr<BufferPool> ir2_pool_;
  std::unique_ptr<BufferPool> mir2_pool_;

  std::unique_ptr<ObjectStore> object_store_;
  std::unique_ptr<RTree> rtree_;
  std::unique_ptr<Ir2Tree> ir2_;
  std::unique_ptr<Mir2Tree> mir2_;
  std::unique_ptr<InvertedIndex> iio_;
  std::unique_ptr<IrScorer> scorer_;
};

}  // namespace ir2

#endif  // IR2TREE_CORE_DATABASE_H_
