#include "core/stats.h"

#include <algorithm>

namespace ir2 {

ConjunctionEstimate EstimateConjunction(
    const InvertedIndex& index,
    std::span<const std::string> normalized_keywords, uint64_t num_objects) {
  ConjunctionEstimate estimate;
  estimate.dfs.reserve(normalized_keywords.size());
  if (num_objects == 0) {
    estimate.selectivity = 0.0;
    for (const std::string& keyword : normalized_keywords) {
      estimate.dfs.push_back(index.DocumentFrequency(keyword));
    }
    return estimate;
  }
  const double n = static_cast<double>(num_objects);
  for (const std::string& keyword : normalized_keywords) {
    const uint64_t df = index.DocumentFrequency(keyword);
    estimate.dfs.push_back(df);
    estimate.selectivity *= static_cast<double>(df) / n;
  }
  return estimate;
}

double ExpectedVerificationLoads(double selectivity, uint32_t k,
                                 uint64_t num_objects) {
  const double n = static_cast<double>(num_objects);
  if (selectivity <= 0.0) {
    return n;
  }
  return std::min(static_cast<double>(k) / selectivity, n);
}

}  // namespace ir2
