#include "core/mir2_tree.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace ir2 {

MultilevelScheme DeriveMultilevelScheme(uint32_t leaf_bits,
                                        uint32_t hashes_per_word,
                                        double avg_distinct_words_per_object,
                                        uint64_t vocabulary_size,
                                        uint32_t node_capacity,
                                        double expected_fill,
                                        uint32_t max_levels) {
  IR2_CHECK_GT(max_levels, 0u);
  MultilevelScheme scheme;
  scheme.per_level.push_back(SignatureConfig{leaf_bits, hashes_per_word});
  const double vocab = static_cast<double>(vocabulary_size);
  const double d = avg_distinct_words_per_object;
  double objects_per_node = 1.0;
  for (uint32_t level = 1; level < max_levels; ++level) {
    objects_per_node *= node_capacity * expected_fill;
    // Expected distinct words among n objects each drawing d of V words:
    // V * (1 - (1 - d/V)^n), saturating toward the vocabulary size.
    double expected_distinct =
        vocab > 0 ? vocab * (1.0 - std::pow(1.0 - std::min(1.0, d / vocab),
                                            objects_per_node))
                  : d * objects_per_node;
    uint32_t bits = OptimalSignatureBits(expected_distinct, hashes_per_word);
    uint32_t vocab_cap =
        OptimalSignatureBits(vocab > 0 ? vocab : expected_distinct,
                             hashes_per_word);
    bits = std::min(bits, vocab_cap);
    // Never narrower than the level below: superimposing more objects can
    // only need more bits.
    bits = std::max(bits, scheme.per_level.back().bits);
    scheme.per_level.push_back(SignatureConfig{bits, hashes_per_word});
  }
  return scheme;
}

Mir2Tree::Mir2Tree(BufferPool* pool, RTreeOptions options,
                   MultilevelScheme scheme, const ObjectStore* objects,
                   const Tokenizer* tokenizer)
    : Ir2Tree(pool, options, scheme.ForLevel(0)),
      scheme_(std::move(scheme)),
      objects_(objects),
      tokenizer_(tokenizer) {
  IR2_CHECK(objects != nullptr);
  IR2_CHECK(tokenizer != nullptr);
}

StatusOr<std::vector<uint64_t>> Mir2Tree::LoadObjectWordHashes(
    ObjectRef ref) const {
  IR2_ASSIGN_OR_RETURN(StoredObject object, objects_->Load(ref));
  ++maintenance_object_loads_;
  std::vector<std::string> words = tokenizer_->DistinctTokens(object.text);
  std::vector<uint64_t> hashes;
  hashes.reserve(words.size());
  for (const std::string& word : words) {
    hashes.push_back(HashWord(word));
  }
  return hashes;
}

Status Mir2Tree::ComputeNodePayloadForParent(const Node& node,
                                             std::vector<uint8_t>* out) {
  const SignatureConfig config = LevelConfig(node.level + 1);
  // "For each object inserted or deleted, we have to recompute the
  // signatures of all ancestor nodes by accessing all underlying objects."
  std::vector<ObjectRef> refs;
  IR2_RETURN_IF_ERROR(CollectObjectRefs(node.id, &refs));
  Signature sig(config.bits);
  for (ObjectRef ref : refs) {
    IR2_ASSIGN_OR_RETURN(std::vector<uint64_t> hashes,
                         LoadObjectWordHashes(ref));
    for (uint64_t hash : hashes) {
      AddWordHash(hash, config, &sig);
    }
  }
  out->assign(sig.bytes().begin(), sig.bytes().end());
  return Status::Ok();
}

Status Mir2Tree::FixupSubtree(BlockId node_id,
                              std::vector<AncestorSlot>* ancestors) {
  IR2_ASSIGN_OR_RETURN(Node node, LoadNode(node_id));
  if (node.is_leaf()) {
    // Leaf entry signatures (level 0) are maintained by InsertObject even
    // in deferred mode; only ancestors need the objects' bits.
    for (const Entry& entry : node.entries) {
      IR2_ASSIGN_OR_RETURN(std::vector<uint64_t> hashes,
                           LoadObjectWordHashes(entry.ref));
      for (uint64_t hash : hashes) {
        for (AncestorSlot& slot : *ancestors) {
          AddWordHash(hash, slot.config, slot.accumulator);
        }
      }
    }
    return Status::Ok();
  }
  bool changed = false;
  for (Entry& entry : node.entries) {
    const SignatureConfig config = LevelConfig(node.level);
    Signature accumulator(config.bits);
    ancestors->push_back(AncestorSlot{&accumulator, config});
    IR2_RETURN_IF_ERROR(FixupSubtree(entry.ref, ancestors));
    ancestors->pop_back();
    std::vector<uint8_t> bytes(accumulator.bytes().begin(),
                               accumulator.bytes().end());
    if (entry.payload != bytes) {
      entry.payload = std::move(bytes);
      changed = true;
    }
  }
  if (changed) {
    IR2_RETURN_IF_ERROR(StoreNode(node));
  }
  return Status::Ok();
}

Status Mir2Tree::RecomputeAllSignatures() {
  if (height() == 0) {
    return Status::Ok();  // Root-only tree: leaf signatures are maintained.
  }
  std::vector<AncestorSlot> ancestors;
  return FixupSubtree(root_id(), &ancestors);
}

}  // namespace ir2
