#include "core/iio.h"

#include <algorithm>

#include "geo/point.h"

namespace ir2 {

StatusOr<std::vector<QueryResult>> IioTopK(const InvertedIndex& index,
                                           const ObjectStore& objects,
                                           const Tokenizer& tokenizer,
                                           const DistanceFirstQuery& query,
                                           QueryStats* stats) {
  // Lines 1-3: retrieve and intersect the posting lists.
  std::vector<std::string> keywords =
      tokenizer.NormalizeKeywords(query.keywords);
  std::vector<std::vector<ObjectRef>> lists;
  lists.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    IR2_ASSIGN_OR_RETURN(std::vector<ObjectRef> list,
                         index.RetrieveList(keyword));
    lists.push_back(std::move(list));
  }
  // Intersect rarest-first: ordering by ascending document frequency (the
  // list lengths) lets the candidate set collapse to the smallest list
  // immediately and keeps every galloping probe short. Which lists are
  // *retrieved* — the disk accesses the paper's cost model counts — is
  // unchanged; only the in-memory intersection order is.
  std::stable_sort(lists.begin(), lists.end(),
                   [](const std::vector<ObjectRef>& a,
                      const std::vector<ObjectRef>& b) {
                     return a.size() < b.size();
                   });
  std::vector<ObjectRef> intersection = IntersectSorted(lists);

  // Lines 4-8: fetch every object in V and compute its distance.
  const Rect target = query.Target();
  std::vector<QueryResult> candidates;
  candidates.reserve(intersection.size());
  for (ObjectRef ref : intersection) {
    IR2_ASSIGN_OR_RETURN(StoredObject object, objects.Load(ref));
    if (stats != nullptr) {
      ++stats->objects_loaded;
    }
    Point location(object.coords);
    double distance = target.MinDist(location);
    candidates.push_back(
        QueryResult{ref, object.id, distance, 0.0, -distance});
  }

  // Lines 9-10: sort by distance, return the first k.
  std::sort(candidates.begin(), candidates.end(),
            [](const QueryResult& a, const QueryResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.ref < b.ref;
            });
  if (candidates.size() > query.k) {
    candidates.resize(query.k);
  }
  return candidates;
}

}  // namespace ir2
