#include "core/iio.h"

#include <algorithm>

#include "geo/point.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/signature.h"

namespace ir2 {

StatusOr<std::vector<QueryResult>> IioTopK(const InvertedIndex& index,
                                           const ObjectStore& objects,
                                           const Tokenizer& tokenizer,
                                           const DistanceFirstQuery& query,
                                           QueryStats* stats,
                                           IoScheduler* object_prefetch) {
  // Lines 1-3: retrieve and intersect the posting lists.
  std::vector<std::string> keywords =
      tokenizer.NormalizeKeywords(query.keywords);
  std::vector<std::vector<ObjectRef>> lists;
  lists.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    obs::TraceSpan span(obs::SpanKind::kPostingListRead,
                        HashWord(keyword));
    IR2_ASSIGN_OR_RETURN(std::vector<ObjectRef> list,
                         index.RetrieveList(keyword));
    lists.push_back(std::move(list));
  }
  // Intersect rarest-first: ordering by ascending document frequency (the
  // list lengths) lets the candidate set collapse to the smallest list
  // immediately and keeps every galloping probe short. Which lists are
  // *retrieved* — the disk accesses the paper's cost model counts — is
  // unchanged; only the in-memory intersection order is.
  std::stable_sort(lists.begin(), lists.end(),
                   [](const std::vector<ObjectRef>& a,
                      const std::vector<ObjectRef>& b) {
                     return a.size() < b.size();
                   });
  std::vector<ObjectRef> intersection = IntersectSorted(lists);

  // The whole candidate set is known before any object is fetched — the
  // best possible case for prefetching. Candidates arrive sorted by ref
  // (ascending file position), so the span between the first and last
  // candidate block is known too, and the scheduler can pick between two
  // shapes:
  //
  //   sweep  read the whole span as one sequential run. Fills the gaps
  //          between candidates with cheap sequential transfers; wins when
  //          the intersection is dense (span not much larger than the
  //          candidates' own blocks), because every record — tail blocks
  //          included — is pooled for one seek.
  //   batch  prefetch each candidate's start + next block. Keeps the
  //          speculation proportional to the candidate count when the span
  //          is sparse; adjacent candidates still coalesce.
  //
  // The cutoff mirrors the DiskModel default ratio of a random access to a
  // sequential transfer (~136 blocks of transfer per seek), halved to stay
  // conservative about speculation the fetch loop may not use.
  if (object_prefetch != nullptr && !intersection.empty()) {
    const size_t object_block_size = object_prefetch->pool()->block_size();
    const BlockId first_block = intersection.front() / object_block_size;
    // One block past the last record's start covers its likely tail.
    const BlockId last_block = intersection.back() / object_block_size + 1;
    const uint64_t span = last_block - first_block + 1;
    if (span <= 64 * intersection.size()) {
      object_prefetch->PrefetchRange(first_block,
                                     static_cast<uint32_t>(span));
    } else {
      std::vector<BlockId> blocks;
      blocks.reserve(2 * intersection.size());
      for (ObjectRef ref : intersection) {
        blocks.push_back(ref / object_block_size);
        blocks.push_back(ref / object_block_size + 1);
      }
      object_prefetch->PrefetchBatch(blocks);
    }
  }

  // Lines 4-8: fetch every object in V and compute its distance.
  const Rect target = query.Target();
  std::vector<QueryResult> candidates;
  candidates.reserve(intersection.size());
  for (ObjectRef ref : intersection) {
    obs::TraceSpan verify_span(obs::SpanKind::kObjectVerify, ref);
    obs::DefaultMetrics().objects_verified->Add();
    IR2_ASSIGN_OR_RETURN(StoredObject object, objects.Load(ref));
    if (stats != nullptr) {
      ++stats->objects_loaded;
    }
    Point location(object.coords);
    double distance = target.MinDist(location);
    candidates.push_back(
        QueryResult{ref, object.id, distance, 0.0, -distance, location});
  }

  // Lines 9-10: sort by distance, return the first k.
  std::sort(candidates.begin(), candidates.end(),
            [](const QueryResult& a, const QueryResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.ref < b.ref;
            });
  if (candidates.size() > query.k) {
    candidates.resize(query.k);
  }
  // Bounded form: IIO materializes the whole intersection regardless (the
  // bound saves no I/O here), so the cap is a pure post-filter — drop
  // results strictly past the inclusive bound to match the distance-
  // ordered algorithms' answers.
  if (query.max_distance.has_value()) {
    while (!candidates.empty() &&
           candidates.back().distance > *query.max_distance) {
      candidates.pop_back();
    }
  }
  return candidates;
}

}  // namespace ir2
