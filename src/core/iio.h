#ifndef IR2TREE_CORE_IIO_H_
#define IR2TREE_CORE_IIO_H_

#include <vector>

#include "common/status_or.h"
#include "core/query.h"
#include "storage/io_scheduler.h"
#include "storage/object_store.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace ir2 {

// The paper's second baseline, Inverted Index Only (Figure 7): retrieve the
// posting list of every keyword, intersect, fetch every object in the
// intersection, sort by distance and return the first k. The only
// non-incremental algorithm: its cost is independent of k and degrades when
// many objects contain all keywords.
//
// Unlike the tree algorithms, IIO cannot express a keyword-less (pure NN)
// query: with no effective keywords the intersection — and the result — is
// empty.
//
// `object_prefetch` (optional): the intersection is known in full before
// any object is fetched, so the whole candidate set's object blocks are
// batch-prefetched up front; the fetch loop then finds them pooled.
// Results and pool-level demand accounting are invariant to it.
StatusOr<std::vector<QueryResult>> IioTopK(
    const InvertedIndex& index, const ObjectStore& objects,
    const Tokenizer& tokenizer, const DistanceFirstQuery& query,
    QueryStats* stats = nullptr, IoScheduler* object_prefetch = nullptr);

}  // namespace ir2

#endif  // IR2TREE_CORE_IIO_H_
