#include "core/general_search.h"

#include <limits>
#include <memory>
#include <optional>
#include <queue>

#include "common/hash.h"
#include "common/logging.h"
#include "geo/point.h"

namespace ir2 {
namespace {

enum class ItemKind {
  kNode,          // id = node BlockId; score is Upper(v).
  kCandidate,     // id = ObjectRef, not yet loaded; score is an upper bound.
  kScoredObject,  // id = ObjectRef with exact score (result/ir/dist filled).
};

struct QueueItem {
  double score;  // Upper bound (node/candidate) or exact (scored object).
  ItemKind kind;
  uint64_t seq;
  uint64_t id;
  // Filled for scored objects only.
  QueryResult result;
};

struct QueueOrder {
  // Max-heap on score; exact scores surface before equal upper bounds so
  // ties resolve toward emitting results.
  bool operator()(const QueueItem& a, const QueueItem& b) const {
    if (a.score != b.score) return a.score < b.score;
    bool a_exact = a.kind == ItemKind::kScoredObject;
    bool b_exact = b.kind == ItemKind::kScoredObject;
    if (a_exact != b_exact) return b_exact;
    return a.seq > b.seq;
  }
};

// Tests one keyword's k bit positions directly against an entry's raw
// payload bytes (avoids materializing a Signature per entry).
bool PayloadMayContainWord(std::span<const uint8_t> payload, uint64_t hash,
                           const SignatureConfig& config) {
  if (payload.size() * 8 < config.bits) {
    return true;  // Corrupted width: never prune on it.
  }
  for (uint32_t i = 0; i < config.hashes_per_word; ++i) {
    uint32_t bit = static_cast<uint32_t>(NthHash(hash, i) % config.bits);
    if (((payload[bit >> 3] >> (bit & 7)) & 1u) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<ScoredQueryTerm> BuildQueryTerms(
    const InvertedIndex& index, const IrScorer& scorer,
    const Tokenizer& tokenizer, const std::vector<std::string>& keywords) {
  std::vector<ScoredQueryTerm> terms;
  std::vector<std::string> normalized = tokenizer.NormalizeKeywords(keywords);
  terms.reserve(normalized.size());
  for (std::string& keyword : normalized) {
    ScoredQueryTerm term;
    term.word = std::move(keyword);
    term.word_hash = HashWord(term.word);
    term.idf = scorer.Idf(index.DocumentFrequency(term.word));
    terms.push_back(std::move(term));
  }
  return terms;
}

// The queue-driven core shared by the one-shot and cursor forms.
class GeneralIr2TopKCursor::Impl {
 public:
  Impl(const Ir2Tree* tree, const ObjectStore* objects,
       const Tokenizer* tokenizer, const IrScorer* scorer,
       std::vector<ScoredQueryTerm> terms, GeneralQuery query,
       QueryStats* stats)
      : tree_(tree),
        objects_(objects),
        tokenizer_(tokenizer),
        scorer_(scorer),
        terms_(std::move(terms)),
        query_(std::move(query)),
        target_(query_.Target()),
        stats_(stats) {
    queue_.push(QueueItem{std::numeric_limits<double>::infinity(),
                          ItemKind::kNode, seq_++, tree->root_id(), {}});
  }

  double F(double distance, double ir_score) const {
    return query_.ir_weight * ir_score -
           query_.distance_weight * distance;
  }

  StatusOr<std::optional<QueryResult>> Next() {
    std::vector<double> matched_idfs;
    matched_idfs.reserve(terms_.size());
    while (!queue_.empty()) {
      QueueItem item = queue_.top();
      queue_.pop();

      if (item.kind == ItemKind::kScoredObject) {
        return std::optional<QueryResult>(item.result);
      }

      if (item.kind == ItemKind::kCandidate) {
        IR2_ASSIGN_OR_RETURN(StoredObject object,
                             objects_->Load(static_cast<ObjectRef>(item.id)));
        if (stats_ != nullptr) {
          ++stats_->objects_loaded;
        }
        TermCounts counts = CountTerms(*tokenizer_, object.text);
        double ir_score = scorer_->Score(counts, terms_);
        if (ir_score <= 0.0 && !query_.allow_zero_ir_score) {
          if (stats_ != nullptr) {
            ++stats_->false_positives;  // Signature matched, text did not.
          }
          continue;
        }
        Point location(object.coords);
        double distance = target_.MinDist(location);
        double score = F(distance, ir_score);
        QueryResult result{static_cast<ObjectRef>(item.id), object.id,
                           distance, ir_score, score, location};
        // "Check if actual score of T is >= the max possible score of the
        // objects in the queue."
        if (queue_.empty() || score >= queue_.top().score) {
          return std::optional<QueryResult>(result);
        }
        queue_.push(QueueItem{score, ItemKind::kScoredObject, seq_++,
                              item.id, result});
        continue;
      }

      // Inner or leaf node: expand with per-entry upper bounds.
      IR2_ASSIGN_OR_RETURN(Node node, tree_->LoadNode(item.id));
      if (stats_ != nullptr) {
        ++stats_->nodes_visited;
      }
      const SignatureConfig config = tree_->LevelConfig(node.level);
      for (const Entry& entry : node.entries) {
        matched_idfs.clear();
        for (const ScoredQueryTerm& term : terms_) {
          if (PayloadMayContainWord(entry.payload, term.word_hash, config)) {
            matched_idfs.push_back(term.idf);
          }
        }
        if (matched_idfs.empty() && !query_.allow_zero_ir_score) {
          // "Check if there can be an object T with non-zero IR score."
          if (stats_ != nullptr) {
            ++stats_->entries_pruned;
          }
          continue;
        }
        double upper_ir = scorer_->UpperBound(matched_idfs);
        double upper = F(target_.MinDist(entry.rect), upper_ir);
        queue_.push(QueueItem{
            upper, node.is_leaf() ? ItemKind::kCandidate : ItemKind::kNode,
            seq_++, entry.ref, {}});
      }
    }
    return std::optional<QueryResult>();
  }

 private:
  const Ir2Tree* tree_;
  const ObjectStore* objects_;
  const Tokenizer* tokenizer_;
  const IrScorer* scorer_;
  std::vector<ScoredQueryTerm> terms_;
  GeneralQuery query_;
  Rect target_;
  QueryStats* stats_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, QueueOrder> queue_;
  uint64_t seq_ = 0;
};

GeneralIr2TopKCursor::GeneralIr2TopKCursor(
    const Ir2Tree* tree, const ObjectStore* objects,
    const Tokenizer* tokenizer, const IrScorer* scorer,
    std::vector<ScoredQueryTerm> terms, GeneralQuery query)
    : impl_(new Impl(tree, objects, tokenizer, scorer, std::move(terms),
                     std::move(query), &stats_)) {}

GeneralIr2TopKCursor::~GeneralIr2TopKCursor() = default;

StatusOr<std::optional<QueryResult>> GeneralIr2TopKCursor::Next() {
  return impl_->Next();
}

StatusOr<std::vector<QueryResult>> GeneralIr2TopK(
    const Ir2Tree& tree, const ObjectStore& objects,
    const Tokenizer& tokenizer, const IrScorer& scorer,
    const std::vector<ScoredQueryTerm>& terms, const GeneralQuery& query,
    QueryStats* stats) {
  GeneralIr2TopKCursor cursor(&tree, &objects, &tokenizer, &scorer, terms,
                              query);
  std::vector<QueryResult> results;
  results.reserve(query.k);
  while (results.size() < query.k) {
    IR2_ASSIGN_OR_RETURN(std::optional<QueryResult> result, cursor.Next());
    if (!result.has_value()) {
      break;
    }
    results.push_back(*result);
  }
  if (stats != nullptr) {
    *stats += cursor.stats();
  }
  return results;
}

}  // namespace ir2
