#include "core/rtree_baseline.h"

#include "rtree/incremental_nn.h"

namespace ir2 {

StatusOr<std::vector<QueryResult>> RTreeTopK(const RTreeBase& tree,
                                             const ObjectStore& objects,
                                             const Tokenizer& tokenizer,
                                             const DistanceFirstQuery& query,
                                             QueryStats* stats,
                                             NNPrefetchOptions prefetch) {
  IncrementalNNCursor cursor(&tree, query.Target(), {}, nullptr, prefetch);
  std::vector<QueryResult> results;
  results.reserve(query.k);
  while (results.size() < query.k) {
    IR2_ASSIGN_OR_RETURN(std::optional<Neighbor> neighbor, cursor.Next());
    if (!neighbor.has_value()) {
      break;  // Dataset exhausted before k matches.
    }
    if (query.max_distance.has_value() &&
        neighbor->distance > *query.max_distance) {
      // Neighbors stream in ascending distance: the first one strictly
      // past the (inclusive) bound proves everything farther is out too.
      break;
    }
    obs::TraceSpan verify_span(obs::SpanKind::kObjectVerify, neighbor->ref);
    obs::DefaultMetrics().objects_verified->Add();
    IR2_ASSIGN_OR_RETURN(StoredObject object, objects.Load(neighbor->ref));
    if (stats != nullptr) {
      ++stats->objects_loaded;
    }
    if (ContainsAllKeywords(tokenizer, object.text, query.keywords)) {
      results.push_back(QueryResult{neighbor->ref, object.id,
                                    neighbor->distance, 0.0,
                                    -neighbor->distance,
                                    Point(object.coords)});
    } else {
      obs::DefaultMetrics().verification_false_positives->Add();
      if (stats != nullptr) {
        ++stats->false_positives;
      }
    }
  }
  if (stats != nullptr) {
    stats->nodes_visited += cursor.nodes_visited();
  }
  return results;
}

}  // namespace ir2
