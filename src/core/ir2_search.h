#ifndef IR2TREE_CORE_IR2_SEARCH_H_
#define IR2TREE_CORE_IR2_SEARCH_H_

#include <algorithm>
#include <optional>
#include <vector>

#include "common/simd.h"
#include "common/status_or.h"
#include "core/ir2_tree.h"
#include "core/query.h"
#include "rtree/incremental_nn.h"
#include "storage/object_store.h"
#include "text/tokenizer.h"

namespace ir2 {

// Per-node buffer for the batched signature test: PrepareNode fills one
// match flag per entry in a single kernel pass over the node's payloads.
// Owned by the query scratch (or the cursor impl's fallback) so steady-state
// queries stop allocating once the flag vector has grown to the tree's
// fan-out.
struct SignatureBatchScratch {
  std::vector<uint8_t> flags;
  const Entry* entries_base = nullptr;  // Identifies the prepared node.
  size_t count = 0;
};

// The "S matches W" pruning test of IR2NearestNeighbor in concrete form:
// handed to IncrementalNNCursorT as a statically-dispatched filter, so the
// per-entry check is a direct (inlinable) call instead of the std::function
// indirection the type-erased EntryFilter costs. Holds pointers only — the
// cursor copies the filter by value.
//
// When `batch` is set, the cursor's PrepareNode hook precomputes the whole
// node's match flags with one resolution of the dispatched kernel — the
// batched multi-signature test — and operator() just reads its entry's
// flag. All counting (metrics, QueryStats) stays in operator(), so the
// per-entry accounting is bit-identical to the unbatched path.
struct SignatureEntryFilter {
  const std::vector<Signature>* level_signatures = nullptr;
  QueryStats* stats = nullptr;
  SignatureBatchScratch* batch = nullptr;

  void PrepareNode(const Node& node) {
    if (batch == nullptr) return;
    const size_t level =
        std::min<size_t>(node.level, level_signatures->size() - 1);
    const Signature& query_sig = (*level_signatures)[level];
    const simd::BytesContainFn contains = simd::ActiveBytesContainFn();
    const uint64_t* query_words = query_sig.words().data();
    const size_t query_bytes = query_sig.num_bytes();
    batch->entries_base = node.entries.data();
    batch->count = node.entries.size();
    batch->flags.resize(node.entries.size());
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const std::vector<uint8_t>& payload = node.entries[i].payload;
      // A width mismatch (corrupted node) never prunes — the same contract
      // as PayloadContainsSignature.
      batch->flags[i] =
          payload.size() != query_bytes ||
                  contains(payload.data(), payload.size(), query_words)
              ? 1
              : 0;
    }
  }

  bool operator()(const Node& node, const Entry& entry) const {
    obs::TraceSpan span(obs::SpanKind::kSignatureTest, entry.ref);
    obs::DefaultMetrics().signature_tests->Add();
    // Clamp defensively: a corrupted node's level byte must not index
    // past the signatures prepared for the tree's real height.
    const size_t level =
        std::min<size_t>(node.level, level_signatures->size() - 1);
    const Signature& query_sig = (*level_signatures)[level];
    bool matches;
    const size_t index = static_cast<size_t>(&entry - node.entries.data());
    if (batch != nullptr && batch->entries_base == node.entries.data() &&
        index < batch->count) {
      matches = batch->flags[index] != 0;
    } else {
      matches = PayloadContainsSignature(entry.payload, query_sig);
    }
    if (matches) {
      return true;
    }
    obs::DefaultMetrics().signature_prunes->Add();
    if (stats != nullptr) {
      ++stats->entries_pruned;
      if (stats->entries_pruned_per_level.size() <= level) {
        stats->entries_pruned_per_level.resize(level + 1);
      }
      ++stats->entries_pruned_per_level[level];
    }
    return false;
  }
};

// Reusable per-worker buffers for the query path: the NN priority queue's
// storage, the keyword-hash and per-level query-signature vectors, and the
// candidate-verification buffers (the loaded object and its raw record
// line). A worker that runs many queries through one scratch stops
// allocating per query once capacities have grown. A scratch must back at
// most one live cursor at a time.
struct Ir2QueryScratch {
  NNScratch nn;
  std::vector<uint64_t> keyword_hashes;
  std::vector<Signature> level_signatures;
  SignatureBatchScratch signature_batch;
  StoredObject candidate;
  std::string record_line;
};

// The distance-first IR2-Tree algorithm (Figure 8, IR2TopK): incremental NN
// over the IR2-Tree with the signature filter — entries (nodes or objects)
// whose signature does not contain the query signature are dropped from the
// search queue — followed by a false-positive check on each candidate
// object. Operates unchanged on a Mir2Tree (the per-level query signatures
// come from the tree's LevelConfig). `scratch` (optional) donates reusable
// buffers; it must not back another live query. `prefetch` (optional)
// enables speculative node/object reads; see NNPrefetchOptions — results
// and pool-level demand accounting are invariant to it.
StatusOr<std::vector<QueryResult>> Ir2TopK(const Ir2Tree& tree,
                                           const ObjectStore& objects,
                                           const Tokenizer& tokenizer,
                                           const DistanceFirstQuery& query,
                                           QueryStats* stats = nullptr,
                                           Ir2QueryScratch* scratch = nullptr,
                                           NNPrefetchOptions prefetch = {});

// Incremental cursor form of the same algorithm, for callers that consume
// results lazily (e.g. "next matching hotel" pagination). `max_distance`
// (inclusive) is the bounded-cursor form: the first neighbor strictly past
// the bound ends the stream, since neighbors arrive in ascending distance.
class Ir2TopKCursor {
 public:
  Ir2TopKCursor(const Ir2Tree* tree, const ObjectStore* objects,
                const Tokenizer* tokenizer, Point point,
                std::vector<std::string> keywords,
                Ir2QueryScratch* scratch = nullptr,
                NNPrefetchOptions prefetch = {},
                std::optional<double> max_distance = {});

  // Area-target variant: results ordered by MINDIST to `target`.
  Ir2TopKCursor(const Ir2Tree* tree, const ObjectStore* objects,
                const Tokenizer* tokenizer, Rect target,
                std::vector<std::string> keywords,
                Ir2QueryScratch* scratch = nullptr,
                NNPrefetchOptions prefetch = {},
                std::optional<double> max_distance = {});
  ~Ir2TopKCursor();

  Ir2TopKCursor(const Ir2TopKCursor&) = delete;
  Ir2TopKCursor& operator=(const Ir2TopKCursor&) = delete;

  // Next verified result, or nullopt when exhausted.
  StatusOr<std::optional<QueryResult>> Next();

  const QueryStats& stats() const { return stats_; }

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  QueryStats stats_;
};

}  // namespace ir2

#endif  // IR2TREE_CORE_IR2_SEARCH_H_
