#ifndef IR2TREE_CORE_IR2_SEARCH_H_
#define IR2TREE_CORE_IR2_SEARCH_H_

#include <vector>

#include "common/status_or.h"
#include "core/ir2_tree.h"
#include "core/query.h"
#include "storage/object_store.h"
#include "text/tokenizer.h"

namespace ir2 {

// The distance-first IR2-Tree algorithm (Figure 8, IR2TopK): incremental NN
// over the IR2-Tree with the signature filter — entries (nodes or objects)
// whose signature does not contain the query signature are dropped from the
// search queue — followed by a false-positive check on each candidate
// object. Operates unchanged on a Mir2Tree (the per-level query signatures
// come from the tree's LevelConfig).
StatusOr<std::vector<QueryResult>> Ir2TopK(const Ir2Tree& tree,
                                           const ObjectStore& objects,
                                           const Tokenizer& tokenizer,
                                           const DistanceFirstQuery& query,
                                           QueryStats* stats = nullptr);

// Incremental cursor form of the same algorithm, for callers that consume
// results lazily (e.g. "next matching hotel" pagination).
class Ir2TopKCursor {
 public:
  Ir2TopKCursor(const Ir2Tree* tree, const ObjectStore* objects,
                const Tokenizer* tokenizer, Point point,
                std::vector<std::string> keywords);

  // Area-target variant: results ordered by MINDIST to `target`.
  Ir2TopKCursor(const Ir2Tree* tree, const ObjectStore* objects,
                const Tokenizer* tokenizer, Rect target,
                std::vector<std::string> keywords);
  ~Ir2TopKCursor();

  Ir2TopKCursor(const Ir2TopKCursor&) = delete;
  Ir2TopKCursor& operator=(const Ir2TopKCursor&) = delete;

  // Next verified result, or nullopt when exhausted.
  StatusOr<std::optional<QueryResult>> Next();

  const QueryStats& stats() const { return stats_; }

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  QueryStats stats_;
};

}  // namespace ir2

#endif  // IR2TREE_CORE_IR2_SEARCH_H_
