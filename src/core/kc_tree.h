#ifndef IR2TREE_CORE_KC_TREE_H_
#define IR2TREE_CORE_KC_TREE_H_

// The Keyword-Clustered Tree (KC-Tree): the fifth planner candidate, built
// for exactly the regime where IR2's superimposed signatures collapse —
// high-frequency keywords. A signature is a lossy OR of *every* word, so a
// word that appears in most subtrees saturates the shared bits and the
// "S matches W" test stops pruning (planner data: IIO beats IR2 on 52/84
// Hotels queries, all keyword-frequency driven).
//
// The KC-Tree splits the vocabulary offline (KcVocabulary):
//
//   hot set    the highest-document-frequency words (bounded by
//              max_hot_words), clustered by frequency tier and then greedily
//              merged by co-occurrence. Each hot word owns one dedicated bit
//              of a per-entry posting bitmap, laid out cluster-major so a
//              cluster is a contiguous bit range. Bit i of an entry is set
//              iff the subtree actually contains word i — exact containment,
//              zero false positives, immune to saturation by construction.
//   cold tail  everything else keeps the classic IR2 superimposed-coding
//              signature, at a width tuned for the tail alone (the hot
//              words, the main density pressure, are excluded from it).
//
// A KC entry payload is [hot bitmap (byte-padded) | cold signature], a plain
// byte string ORed up the tree like any IR2 payload — so the whole
// BufferPool / NodeCache / IoScheduler / DiskModel stack, the R-tree node
// layout, and the word-wide containment kernels (simd::ActiveBytesContainFn)
// work unchanged. Query bits put hot keywords in their exact bits and cold
// keywords in the cold signature; one containment test prunes on both at
// once. See docs/performance.md (KC-Tree chapter) and docs/planner.md.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "core/ir2_search.h"
#include "core/query.h"
#include "rtree/incremental_nn.h"
#include "rtree/rtree_base.h"
#include "storage/object_store.h"
#include "text/signature.h"
#include "text/tokenizer.h"

namespace ir2 {

// Offline vocabulary clustering knobs (DatabaseOptions::kc_vocabulary).
struct KcVocabularyOptions {
  // At most this many words get dedicated bitmap bits; the bitmap adds
  // (max_hot_words + 7) / 8 bytes to every entry payload, so the default
  // costs 8 bytes next to IR2's 189-byte Hotels signature.
  uint32_t max_hot_words = 64;
  // A word must appear in at least this many documents to qualify as hot —
  // rare words prune fine through the cold signature already.
  uint64_t min_hot_df = 8;
  // Greedy cluster merge: two clusters merge while some cross pair of their
  // words has cooccurrence(a, b) / min(df_a, df_b) at or above this.
  // Co-occurring hot words are queried together, so keeping their bits in
  // one cluster makes the per-cluster EXPLAIN attribution line up with real
  // workloads. 1.1 (unreachable) disables merging, leaving pure df tiers.
  double cooc_merge_threshold = 0.5;
  // Cap on merged cluster size (bits), so one aggressive merge chain cannot
  // collapse the layout into a single cluster.
  uint32_t max_cluster_words = 16;
  // Cold-tail signature scheme. bits == 0 inherits the database's
  // ir2_signature width — same per-entry budget as IR2, spent only on the
  // words that still need the lossy encoding.
  SignatureConfig cold_signature{/*bits=*/0, /*hashes_per_word=*/3};
};

// The clustered vocabulary: the hot words, their cluster assignment and bit
// layout, and the cold-tail signature scheme. Immutable once built; shared
// by the tree, the query path, the planner snapshot, and EXPLAIN.
class KcVocabulary {
 public:
  struct Word {
    std::string word;     // Normalized form (tokenizer output).
    uint64_t hash = 0;    // HashWord(word).
    uint64_t df = 0;      // Document frequency at build time.
    uint32_t cluster = 0;
  };
  struct Cluster {
    uint32_t first_bit = 0;  // Clusters are contiguous bit ranges
    uint32_t num_bits = 0;   // (cluster-major layout).
    uint64_t max_df = 0;     // Highest df among the cluster's words.
  };

  KcVocabulary() = default;

  // Builds the clustering from per-document distinct-word lists (the
  // tokenize pass the database build already performs): document
  // frequencies select and tier the hot set, a second pass counts pairwise
  // co-occurrence among hot words, and clusters merge greedily while the
  // strongest cross-pair affinity clears the threshold. Deterministic:
  // every ordering ties on (df desc, word asc).
  static KcVocabulary Build(std::span<const std::vector<std::string>> docs,
                            const KcVocabularyOptions& options,
                            const SignatureConfig& fallback_cold);

  // Reconstructs a vocabulary from its serialized form: `words` in bit
  // order with cluster ids exactly as Words() returned them (the manifest
  // round-trip).
  static StatusOr<KcVocabulary> FromWords(std::vector<Word> words,
                                          SignatureConfig cold);

  // Dedicated bit of a hot word, or -1 when the word rides the cold tail.
  int32_t HotBit(uint64_t word_hash) const;
  // Cluster owning bit `bit` (< hot_bits()).
  uint32_t ClusterOfBit(uint32_t bit) const { return bit_cluster_[bit]; }

  uint32_t hot_bits() const { return static_cast<uint32_t>(words_.size()); }
  // The bitmap region is byte-padded so the cold signature starts on a byte
  // boundary and its bytes copy in without shifting.
  uint32_t hot_bytes() const { return (hot_bits() + 7) / 8; }
  const SignatureConfig& cold_config() const { return cold_; }
  uint32_t cold_bytes() const { return cold_.bytes(); }
  uint32_t payload_bytes() const { return hot_bytes() + cold_bytes(); }

  const std::vector<Word>& words() const { return words_; }
  const std::vector<Cluster>& clusters() const { return clusters_; }

 private:
  void RebuildLookup();

  std::vector<Word> words_;        // In bit order (bit i = words_[i]).
  std::vector<Cluster> clusters_;  // In first_bit order.
  std::vector<uint32_t> bit_cluster_;
  SignatureConfig cold_{64, 3};
  // (hash, bit) sorted by hash, for the query-time lookup.
  std::vector<std::pair<uint64_t, uint32_t>> hash_to_bit_;
};

// The tree itself: RTreeBase with KC payloads. Parents OR their children's
// payloads (the RTreeBase default), which is exactly right for both
// regions: a hot bit ORs up to "some object below contains word i" and the
// cold region superimposes like any IR2 signature.
class KcTree : public RTreeBase {
 public:
  // `vocab` must outlive the tree.
  KcTree(BufferPool* pool, RTreeOptions options, const KcVocabulary* vocab)
      : RTreeBase(pool, options), vocab_(vocab) {}

  uint32_t PayloadBytes(uint32_t /*level*/) const override {
    return vocab_->payload_bytes();
  }

  Status InsertObject(ObjectRef ref, const Rect& rect,
                      std::span<const uint64_t> word_hashes);

  struct BulkObject {
    ObjectRef ref;
    Rect rect;
    std::vector<uint64_t> word_hashes;
  };
  Status BulkLoadObjects(std::span<const BulkObject> objects,
                         double fill_fraction = 0.7);

  // Query bits at the payload width: each hot keyword sets its exact bit,
  // the cold keywords superimpose into the cold region. The containment
  // test "payload contains query" then checks both regions in one pass.
  // `cold_scratch` (optional) donates storage for the intermediate
  // cold-region signature so a warm worker stops allocating.
  void QueryBitsInto(std::span<const uint64_t> keyword_hashes, Signature* out,
                     Signature* cold_scratch = nullptr) const;

  const KcVocabulary& vocabulary() const { return *vocab_; }

 private:
  const KcVocabulary* vocab_;
};

// PayloadSource filling [hot bitmap | cold signature] for one object. The
// payload is level-independent (uniform width), like the IR2-Tree's.
class KcPayloadSource final : public PayloadSource {
 public:
  KcPayloadSource(const KcVocabulary* vocab,
                  std::span<const uint64_t> word_hashes)
      : vocab_(vocab), word_hashes_(word_hashes) {}

  void FillPayload(uint32_t level, std::span<uint8_t> out) const override;

 private:
  const KcVocabulary* vocab_;
  std::span<const uint64_t> word_hashes_;
};

// Entry filter for the incremental NN traversal, the KC analogue of
// SignatureEntryFilter: PrepareNode precomputes the whole node's
// containment flags with one batched kernel pass (SIMD-dispatched;
// bit-identical across tiers), operator() reads its entry's flag and, on a
// prune, attributes it — scalar, prune path only — to the first hot
// cluster with a missing bit, or to the cold signature when the whole
// bitmap was contained. All counting lives in operator().
struct KcEntryFilter {
  const KcVocabulary* vocab = nullptr;
  const Signature* query_bits = nullptr;  // One width for all levels.
  QueryStats* stats = nullptr;
  SignatureBatchScratch* batch = nullptr;

  void PrepareNode(const Node& node);
  bool operator()(const Node& node, const Entry& entry) const;
};

// The distance-first KC-Tree algorithm: incremental NN with the KC filter,
// candidates verified against the object text exactly like IR2TopK (hot
// bits are exact, but cold-tail keywords can still false-positive).
// `scratch` donates the same reusable buffers as the IR2 path — a
// BatchExecutor worker shares one Ir2QueryScratch across all tree
// algorithms. Honors query.max_distance (the bounded-cursor form): the NN
// stream is distance-ordered, so the first neighbor past the bound ends
// the search.
StatusOr<std::vector<QueryResult>> KcTopK(const KcTree& tree,
                                          const ObjectStore& objects,
                                          const Tokenizer& tokenizer,
                                          const DistanceFirstQuery& query,
                                          QueryStats* stats = nullptr,
                                          Ir2QueryScratch* scratch = nullptr,
                                          NNPrefetchOptions prefetch = {});

// Incremental cursor form (pagination; the sharded radius-capped legs).
class KcTopKCursor {
 public:
  KcTopKCursor(const KcTree* tree, const ObjectStore* objects,
               const Tokenizer* tokenizer, Rect target,
               std::vector<std::string> keywords,
               Ir2QueryScratch* scratch = nullptr,
               NNPrefetchOptions prefetch = {},
               std::optional<double> max_distance = {});
  ~KcTopKCursor();

  KcTopKCursor(const KcTopKCursor&) = delete;
  KcTopKCursor& operator=(const KcTopKCursor&) = delete;

  // Next verified result, or nullopt when exhausted (or past max_distance).
  StatusOr<std::optional<QueryResult>> Next();

  const QueryStats& stats() const { return stats_; }

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  QueryStats stats_;
};

}  // namespace ir2

#endif  // IR2TREE_CORE_KC_TREE_H_
