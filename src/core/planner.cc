#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "text/signature.h"

namespace ir2 {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

constexpr Algorithm kPlannable[kNumPlannableAlgorithms] = {
    Algorithm::kRTree, Algorithm::kIio, Algorithm::kIr2, Algorithm::kMir2,
    Algorithm::kKcTree};

obs::Counter* PlanChosenCounter(Algorithm algo) {
  const obs::CoreMetrics& m = obs::DefaultMetrics();
  switch (algo) {
    case Algorithm::kRTree: return m.plan_chosen_rtree;
    case Algorithm::kIio: return m.plan_chosen_iio;
    case Algorithm::kIr2: return m.plan_chosen_ir2;
    case Algorithm::kMir2: return m.plan_chosen_mir2;
    case Algorithm::kKcTree: return m.plan_chosen_kctree;
    case Algorithm::kAuto: break;
  }
  return nullptr;
}

}  // namespace

const char* AlgorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kRTree: return "rtree";
    case Algorithm::kIio: return "iio";
    case Algorithm::kIr2: return "ir2";
    case Algorithm::kMir2: return "mir2";
    case Algorithm::kKcTree: return "kctree";
    case Algorithm::kAuto: return "auto";
  }
  return "unknown";
}

bool ParseAlgorithm(std::string_view name, Algorithm* out) {
  for (Algorithm algo : {Algorithm::kRTree, Algorithm::kIio, Algorithm::kIr2,
                         Algorithm::kMir2, Algorithm::kKcTree,
                         Algorithm::kAuto}) {
    if (name == AlgorithmName(algo)) {
      *out = algo;
      return true;
    }
  }
  return false;
}

// ---- PlannerFeedback ----

void PlannerFeedback::Record(Algorithm algo, int bucket, double static_ms,
                             double observed_ms) {
  if (!(static_ms > 0.0) || !std::isfinite(static_ms) ||
      !(observed_ms >= 0.0) || !std::isfinite(observed_ms)) {
    return;
  }
  Cell& cell = CellFor(algo, bucket);
  const double ratio = observed_ms / static_ms;
  const uint64_t prior = cell.count.fetch_add(1, std::memory_order_relaxed);
  double expected = cell.ratio.load(std::memory_order_relaxed);
  double desired;
  do {
    desired = prior == 0 ? ratio : (1.0 - kAlpha) * expected + kAlpha * ratio;
  } while (!cell.ratio.compare_exchange_weak(expected, desired,
                                             std::memory_order_relaxed));
}

double PlannerFeedback::Correction(Algorithm algo, int bucket) const {
  const Cell& cell = CellFor(algo, bucket);
  if (cell.count.load(std::memory_order_relaxed) == 0) {
    return 1.0;
  }
  return std::max(cell.ratio.load(std::memory_order_relaxed), 1e-6);
}

uint64_t PlannerFeedback::Count(Algorithm algo, int bucket) const {
  return CellFor(algo, bucket).count.load(std::memory_order_relaxed);
}

void PlannerFeedback::MergeFrom(const PlannerFeedback& other) {
  for (Algorithm algo : kPlannable) {
    for (int bucket = 0; bucket < kBuckets; ++bucket) {
      const Cell& src = other.CellFor(algo, bucket);
      const uint64_t src_count = src.count.load(std::memory_order_relaxed);
      if (src_count == 0) {
        continue;
      }
      const double src_ratio = src.ratio.load(std::memory_order_relaxed);
      Cell& dst = CellFor(algo, bucket);
      const uint64_t dst_count =
          dst.count.fetch_add(src_count, std::memory_order_relaxed);
      double expected = dst.ratio.load(std::memory_order_relaxed);
      double desired;
      do {
        desired = dst_count == 0
                      ? src_ratio
                      : (expected * static_cast<double>(dst_count) +
                         src_ratio * static_cast<double>(src_count)) /
                            static_cast<double>(dst_count + src_count);
      } while (!dst.ratio.compare_exchange_weak(expected, desired,
                                                std::memory_order_relaxed));
    }
  }
}

void PlannerFeedback::Reset() {
  for (auto& per_algo : cells_) {
    for (Cell& cell : per_algo) {
      cell.ratio.store(1.0, std::memory_order_relaxed);
      cell.count.store(0, std::memory_order_relaxed);
    }
  }
}

// ---- QueryPlanner ----

QueryPlanner::QueryPlanner(PlannerInputs inputs, const InvertedIndex* index,
                           const Tokenizer* tokenizer)
    : inputs_(std::move(inputs)), index_(index), tokenizer_(tokenizer) {}

int QueryPlanner::SelectivityBucket(double selectivity) {
  if (!(selectivity > 0.0)) {
    return PlannerFeedback::kBuckets - 1;
  }
  const int bucket =
      static_cast<int>(std::floor(-std::log10(std::min(selectivity, 1.0))));
  return std::clamp(bucket, 0, PlannerFeedback::kBuckets - 1);
}

double QueryPlanner::SignatureFalsePositiveRate(const PlannerLevel& level,
                                                size_t num_keywords) {
  if (level.signature_bits == 0 || num_keywords == 0) {
    return 1.0;
  }
  const double density = std::clamp(level.payload_density, 0.0, 1.0);
  if (density >= 1.0) {
    return 1.0;
  }
  if (density <= 0.0) {
    return 0.0;
  }
  // Expected distinct bits a query of m keywords sets: b draws of
  // m * hashes_per_word positions over b bits, with collisions.
  const double bits = static_cast<double>(level.signature_bits);
  const double draws =
      static_cast<double>(num_keywords) * level.hashes_per_word;
  const double weight = bits * (1.0 - std::pow(1.0 - 1.0 / bits, draws));
  // Each of those bits is set in a random payload with probability
  // `density`, independently under superimposed coding.
  return std::pow(density, weight);
}

double QueryPlanner::TreeCost(const PlannerTreeShape& shape, uint32_t k,
                              const ConjunctionEstimate& est) const {
  if (!shape.present() || inputs_.num_objects == 0) {
    return kInfeasible;
  }
  const DiskModel model(inputs_.disk_model, inputs_.block_size);
  const double random_ms = model.RandomAccessMs();
  const double seq_ms = model.SequentialAccessMs();
  const double n = static_cast<double>(inputs_.num_objects);
  const double s = std::min(est.selectivity, 1.0);
  // Leaf entries the distance-ordered frontier inspects before k true
  // matches have been verified.
  const double frontier = ExpectedVerificationLoads(s, k, inputs_.num_objects);

  double node_ms = 0.0;
  const size_t height = shape.levels.size();
  for (size_t level = 0; level < height; ++level) {
    const PlannerLevel& li = shape.levels[level];
    if (li.nodes == 0) {
      continue;
    }
    const double per_subtree = n / static_cast<double>(li.nodes);
    // Nodes at this level overlapping the frontier region...
    const double touched = std::min(static_cast<double>(li.nodes),
                                    frontier / per_subtree + 1.0);
    // ...visited only if the signature test on their parent entry passes.
    // Each query keyword is tested independently against the superimposed
    // signature: a subtree genuinely containing the word always passes its
    // bits, one lacking it passes at the single-word false-positive rate.
    // Factoring per keyword keeps a high-frequency keyword (whose bits are
    // set nearly everywhere) from masking how hard a rare co-keyword
    // prunes — the joint density^weight form underprices exactly those
    // mixed conjunctions. The root (no parent entry) and plain R-Tree
    // levels (no signatures, fp = 1) always pass.
    double visit_rate = 1.0;
    if (level + 1 < height) {
      const double fp1 =
          SignatureFalsePositiveRate(shape.levels[level + 1], 1);
      double pass = 1.0;
      for (uint64_t df : est.dfs) {
        const double sel = std::min(1.0, static_cast<double>(df) / n);
        const double match = 1.0 - std::pow(1.0 - sel, per_subtree);
        pass *= match + (1.0 - match) * fp1;
      }
      visit_rate = pass;
    }
    node_ms += touched * visit_rate *
               (random_ms + (li.blocks_per_node - 1.0) * seq_ms);
  }

  // Objects loaded for verification: a leaf entry passes when every
  // keyword is either genuinely present (probability sel_i) or falsely
  // matched by the signature. The product is bounded below by the true
  // conjunction selectivity s = prod(sel_i).
  const double fp1_leaf = SignatureFalsePositiveRate(shape.levels[0], 1);
  double pass_leaf = 1.0;
  for (uint64_t df : est.dfs) {
    const double sel = std::min(1.0, static_cast<double>(df) / n);
    pass_leaf *= sel + (1.0 - sel) * fp1_leaf;
  }
  const double object_loads = frontier * std::max(s, pass_leaf);
  const double object_ms =
      object_loads *
      (random_ms + (inputs_.avg_blocks_per_object - 1.0) * seq_ms);
  return node_ms + object_ms;
}

double QueryPlanner::IioCost(const ConjunctionEstimate& est,
                             std::span<const uint64_t> posting_blocks) const {
  if (!inputs_.iio_present || est.dfs.empty()) {
    // No index, or a keyword-less query IIO cannot answer (intersecting
    // zero posting lists yields nothing, not "everything").
    return kInfeasible;
  }
  const DiskModel model(inputs_.disk_model, inputs_.block_size);
  const double random_ms = model.RandomAccessMs();
  const double seq_ms = model.SequentialAccessMs();
  double ms = 0.0;
  // Retrieving each posting list: one random access plus sequential reads
  // for the remaining blocks it spans.
  for (size_t i = 0; i < est.dfs.size(); ++i) {
    double blocks;
    if (i < posting_blocks.size() && posting_blocks[i] > 0) {
      blocks = static_cast<double>(posting_blocks[i]);
    } else if (est.dfs[i] > 0) {
      blocks = std::ceil(static_cast<double>(est.dfs[i]) *
                         inputs_.iio_bytes_per_posting /
                         static_cast<double>(inputs_.block_size));
      blocks = std::max(blocks, 1.0);
    } else {
      continue;  // Absent word: the dictionary answers without I/O.
    }
    ms += random_ms + (blocks - 1.0) * seq_ms;
  }
  // Every intersection survivor (exact, no false positives) is loaded and
  // distance-sorted — the cost is independent of k.
  const double matches = est.ExpectedMatches(inputs_.num_objects);
  ms += matches *
        (random_ms + (inputs_.avg_blocks_per_object - 1.0) * seq_ms);
  return ms;
}

// KC-Tree cost: the same frontier/visit-rate skeleton as TreeCost, with
// the entry-pass probability split the way the index splits the
// vocabulary. A hot query keyword is tested against an exact per-subtree
// bit — a non-matching entry passes only if its subtree genuinely contains
// the word, probability 1 - (1 - s_i)^m for a size-m subtree — while cold
// keywords add the superimposed-coding false-positive rate of the cold
// region alone. At the leaf (m = 1) the hot term collapses to the product
// of the keywords' raw selectivities, which is exactly the pruning power a
// saturated IR2 signature loses on high-frequency keywords.
double QueryPlanner::KcCost(uint32_t k, const ConjunctionEstimate& est,
                            std::span<const uint64_t> keyword_hashes) const {
  const PlannerTreeShape& shape = inputs_.kc;
  if (!shape.present() || inputs_.num_objects == 0) {
    return kInfeasible;
  }
  const DiskModel model(inputs_.disk_model, inputs_.block_size);
  const double random_ms = model.RandomAccessMs();
  const double seq_ms = model.SequentialAccessMs();
  const double n = static_cast<double>(inputs_.num_objects);
  const double s = std::min(est.selectivity, 1.0);
  const double frontier = ExpectedVerificationLoads(s, k, inputs_.num_objects);

  // Split the query. Keywords without a hash (cost-model unit tests feed
  // synthetic frequencies only) are priced as cold — the conservative
  // floor, since the hot bits can only prune harder.
  std::vector<double> hot_sel;
  std::vector<double> cold_sel;
  for (size_t i = 0; i < est.dfs.size(); ++i) {
    const double sel = std::min(1.0, static_cast<double>(est.dfs[i]) / n);
    bool hot = false;
    if (i < keyword_hashes.size()) {
      auto it = std::lower_bound(
          inputs_.kc_hot_word_dfs.begin(), inputs_.kc_hot_word_dfs.end(),
          keyword_hashes[i],
          [](const std::pair<uint64_t, uint64_t>& entry, uint64_t h) {
            return entry.first < h;
          });
      hot = it != inputs_.kc_hot_word_dfs.end() &&
            it->first == keyword_hashes[i];
    }
    (hot ? hot_sel : cold_sel).push_back(sel);
  }

  // P(size-m subtree contains every hot query keyword) — exact bits, no
  // false-positive term.
  auto hot_pass = [&](double per_subtree) {
    double pass = 1.0;
    for (double sel : hot_sel) {
      pass *= 1.0 - std::pow(1.0 - sel, per_subtree);
    }
    return pass;
  };
  // Cold-region pass rate at a level, per keyword like TreeCost: a
  // subtree genuinely containing the cold word always passes its bits,
  // one lacking it passes at the single-word false-positive rate. The
  // snapshot's payload_density covers the whole payload, so subtract the
  // expected set hot bits of a size-m subtree to recover the cold
  // region's own density before applying the superimposed model.
  auto cold_pass = [&](const PlannerLevel& level, double per_subtree) {
    if (cold_sel.empty()) return 1.0;
    if (inputs_.kc_cold_bits == 0) return 1.0;  // No cold filter built.
    double hot_bits_set = 0.0;
    for (const auto& [hash, df] : inputs_.kc_hot_word_dfs) {
      const double sel = std::min(1.0, static_cast<double>(df) / n);
      hot_bits_set += 1.0 - std::pow(1.0 - sel, per_subtree);
    }
    PlannerLevel cold;
    cold.signature_bits = inputs_.kc_cold_bits;
    cold.hashes_per_word = inputs_.kc_cold_hashes;
    cold.payload_density =
        std::clamp((level.payload_density *
                        static_cast<double>(level.signature_bits) -
                    hot_bits_set) /
                       static_cast<double>(inputs_.kc_cold_bits),
                   0.0, 1.0);
    const double fp1 = SignatureFalsePositiveRate(cold, 1);
    double pass = 1.0;
    for (double sel : cold_sel) {
      const double match = 1.0 - std::pow(1.0 - sel, per_subtree);
      pass *= match + (1.0 - match) * fp1;
    }
    return pass;
  };

  double node_ms = 0.0;
  const size_t height = shape.levels.size();
  for (size_t level = 0; level < height; ++level) {
    const PlannerLevel& li = shape.levels[level];
    if (li.nodes == 0) {
      continue;
    }
    const double per_subtree = n / static_cast<double>(li.nodes);
    const double touched = std::min(static_cast<double>(li.nodes),
                                    frontier / per_subtree + 1.0);
    // Both factors carry their own containment terms (a subtree holding a
    // true match keeps every per-word factor at 1), so the product is the
    // whole visit rate — no separate match + (1 - match) * fp split.
    double visit_rate = 1.0;
    if (level + 1 < height) {
      visit_rate = hot_pass(per_subtree) *
                   cold_pass(shape.levels[level + 1], per_subtree);
    }
    node_ms += touched * visit_rate *
               (random_ms + (li.blocks_per_node - 1.0) * seq_ms);
  }

  const double pass_leaf = hot_pass(1.0) * cold_pass(shape.levels[0], 1.0);
  const double object_loads = frontier * std::max(s, pass_leaf);
  const double object_ms =
      object_loads *
      (random_ms + (inputs_.avg_blocks_per_object - 1.0) * seq_ms);
  return node_ms + object_ms;
}

double QueryPlanner::StaticCost(Algorithm algo, uint32_t k,
                                const ConjunctionEstimate& est,
                                std::span<const uint64_t> posting_blocks,
                                std::span<const uint64_t> keyword_hashes) const {
  switch (algo) {
    case Algorithm::kRTree:
      return TreeCost(inputs_.rtree, k, est);
    case Algorithm::kIio:
      return IioCost(est, posting_blocks);
    case Algorithm::kIr2:
      return TreeCost(inputs_.ir2, k, est);
    case Algorithm::kMir2:
      return TreeCost(inputs_.mir2, k, est);
    case Algorithm::kKcTree:
      return KcCost(k, est, keyword_hashes);
    case Algorithm::kAuto:
      break;
  }
  return kInfeasible;
}

QueryPlan QueryPlanner::Plan(const DistanceFirstQuery& q,
                             const PlannerFeedback* corrections) const {
  const PlannerFeedback& fb = corrections != nullptr ? *corrections : feedback_;
  QueryPlan plan;

  const std::vector<std::string> keywords =
      tokenizer_->NormalizeKeywords(q.keywords);
  std::vector<uint64_t> keyword_hashes;
  keyword_hashes.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    keyword_hashes.push_back(HashWord(keyword));
  }

  std::vector<uint64_t> posting_blocks;
  if (index_ != nullptr) {
    plan.estimate =
        EstimateConjunction(*index_, keywords, inputs_.num_objects);
    posting_blocks.reserve(keywords.size());
    for (const std::string& keyword : keywords) {
      posting_blocks.push_back(index_->PostingBlocks(keyword));
    }
  } else {
    // No dictionary to ask: assume each keyword matches
    // default_keyword_selectivity of the corpus.
    const double df = inputs_.default_keyword_selectivity *
                      static_cast<double>(inputs_.num_objects);
    for (size_t i = 0; i < keywords.size(); ++i) {
      plan.estimate.dfs.push_back(static_cast<uint64_t>(df));
      plan.estimate.selectivity *= inputs_.default_keyword_selectivity;
    }
  }
  plan.bucket = SelectivityBucket(plan.estimate.selectivity);

  for (Algorithm algo : kPlannable) {
    PlanCandidate& c = plan.candidates[static_cast<size_t>(algo)];
    c.algo = algo;
    c.static_ms =
        StaticCost(algo, q.k, plan.estimate, posting_blocks, keyword_hashes);
    c.feasible = std::isfinite(c.static_ms);
    c.predicted_ms =
        c.feasible ? c.static_ms * fb.Correction(algo, plan.bucket)
                   : kInfeasible;
    if (c.feasible && c.predicted_ms < plan.chosen_predicted_ms) {
      plan.has_choice = true;
      plan.chosen = algo;
      plan.chosen_predicted_ms = c.predicted_ms;
    }
  }
  for (const PlanCandidate& c : plan.candidates) {
    if (c.feasible && c.algo != plan.chosen) {
      plan.best_rejected_predicted_ms =
          std::min(plan.best_rejected_predicted_ms, c.predicted_ms);
    }
  }
  if (plan.has_choice) {
    if (obs::Counter* counter = PlanChosenCounter(plan.chosen)) {
      counter->Add();
    }
  }
  return plan;
}

void QueryPlanner::RecordOutcome(const QueryPlan& plan, double observed_ms,
                                 PlannerFeedback* sink) {
  if (!plan.has_choice) {
    return;
  }
  PlannerFeedback& fb = sink != nullptr ? *sink : feedback_;
  fb.Record(plan.chosen, plan.bucket, plan.Candidate(plan.chosen).static_ms,
            observed_ms);
  if (observed_ms > plan.best_rejected_predicted_ms) {
    obs::DefaultMetrics().plan_mispredict->Add();
  }
}

}  // namespace ir2
