#ifndef IR2TREE_CORE_GENERAL_SEARCH_H_
#define IR2TREE_CORE_GENERAL_SEARCH_H_

#include <vector>

#include "common/status_or.h"
#include "core/ir2_tree.h"
#include "core/query.h"
#include "storage/object_store.h"
#include "text/inverted_index.h"
#include "text/ir_score.h"
#include "text/tokenizer.h"

namespace ir2 {

// Normalizes the query keywords (dropping stopwords and duplicates) and
// attaches their idfs (from the inverted index dictionary; no disk I/O) —
// the per-keyword signatures W_i of Section V-C are derived from the word
// hashes.
std::vector<ScoredQueryTerm> BuildQueryTerms(
    const InvertedIndex& index, const IrScorer& scorer,
    const Tokenizer& tokenizer, const std::vector<std::string>& keywords);

// The general IR2-Tree algorithm (Section V-C): objects are ranked by
// f(distance, IRscore) = ir_weight * IRscore - distance_weight * distance.
// The priority queue orders subtrees by Upper(v) = f(MinDist(v.MBR),
// UpperBound_IR(v.S)); an object is emitted once its actual score is >= the
// best possible score of anything still in the queue. Uses the individual
// keyword signatures (OR semantics — an object containing only some
// keywords may be a result). Works on Ir2Tree and Mir2Tree alike.
StatusOr<std::vector<QueryResult>> GeneralIr2TopK(
    const Ir2Tree& tree, const ObjectStore& objects,
    const Tokenizer& tokenizer, const IrScorer& scorer,
    const std::vector<ScoredQueryTerm>& terms, const GeneralQuery& query,
    QueryStats* stats = nullptr);

// Incremental cursor form of the general algorithm: each Next() emits the
// next-best object by f (non-increasing scores), or nullopt when no
// further object can score positively (or the tree is exhausted). `query.k`
// is ignored — the caller decides when to stop.
class GeneralIr2TopKCursor {
 public:
  GeneralIr2TopKCursor(const Ir2Tree* tree, const ObjectStore* objects,
                       const Tokenizer* tokenizer, const IrScorer* scorer,
                       std::vector<ScoredQueryTerm> terms,
                       GeneralQuery query);
  ~GeneralIr2TopKCursor();

  GeneralIr2TopKCursor(const GeneralIr2TopKCursor&) = delete;
  GeneralIr2TopKCursor& operator=(const GeneralIr2TopKCursor&) = delete;

  StatusOr<std::optional<QueryResult>> Next();

  const QueryStats& stats() const { return stats_; }

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  QueryStats stats_;
};

}  // namespace ir2

#endif  // IR2TREE_CORE_GENERAL_SEARCH_H_
