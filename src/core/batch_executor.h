#ifndef IR2TREE_CORE_BATCH_EXECUTOR_H_
#define IR2TREE_CORE_BATCH_EXECUTOR_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status_or.h"
#include "core/ir2_tree.h"
#include "core/ir2_search.h"
#include "core/planner.h"
#include "core/query.h"
#include "storage/buffer_pool.h"
#include "storage/object_store.h"
#include "text/tokenizer.h"

namespace ir2 {

class SpatialKeywordDatabase;

struct BatchExecutorOptions {
  // Worker threads; 0 picks std::thread::hardware_concurrency(). Capped at
  // the number of queries.
  size_t num_threads = 1;

  // Clear the worker's private pool and reset its device cursors before
  // every query, so each query is measured from a cold disk — the same
  // regime as DatabaseOptions::cold_queries. With this set, a query's
  // QueryStats (including its IoStats) are a pure function of the query and
  // the index, independent of batch order and thread count.
  bool cold_queries = true;

  // Capacity (blocks) of each worker's private node cache. Matches
  // DatabaseOptions::pool_blocks so batch and serial runs cache alike.
  size_t pool_blocks = 1 << 16;

  // Algorithm executed by the database-mode constructor (ignored in tree
  // mode). kAuto plans per query: workers read corrections from the
  // planner's feedback — effectively frozen for the batch, keeping
  // decisions independent of thread count and arrival order — and record
  // outcomes into worker-private PlannerFeedback instances merged into the
  // planner once on drain, exactly like the private metrics registries.
  Algorithm algorithm = Algorithm::kAuto;
};

// Everything a Run produces: results[i] and per_query[i] answer queries[i],
// in the order the queries were given, whatever order they executed in.
struct BatchResults {
  std::vector<std::vector<QueryResult>> results;
  std::vector<QueryStats> per_query;

  // Page-cache counters summed over every worker's private pool for the
  // whole batch (across cold-query Clear() epochs, which reset the pools'
  // own counters).
  BufferPoolStats pool_stats;

  // Sum over per_query. `seconds` is summed per-query work time (CPU-side
  // wall clock of each query), not batch elapsed time.
  QueryStats Aggregate() const;
};

// Runs a batch of distance-first queries against one IR2-Tree (or
// MIR2-Tree) with a fixed pool of worker threads.
//
// The tree, object store and tokenizer are shared read-only. Each worker
// opens a *private* BufferPool on the tree's device and routes its node
// reads through it with a ScopedReadPool, so workers never contend on a
// shared cache and — with cold_queries — every query sees exactly the cache
// state a serial cold run would give it. Per-query I/O is attributed
// through the devices' per-thread counters (BlockDevice::thread_stats), so
// concurrent workers never bleed into each other's IoStats.
//
// Queries are claimed from a shared atomic index (dynamic load balancing);
// results land at the query's original position. The first query error
// aborts the batch and is returned.
class BatchExecutor {
 public:
  // All pointees must outlive the executor. Pass a Mir2Tree as `tree` to
  // batch over the multilevel variant (Ir2TopK is polymorphic over both).
  BatchExecutor(const Ir2Tree* tree, const ObjectStore* objects,
                const Tokenizer* tokenizer, BatchExecutorOptions options = {});

  // Database mode: runs options.algorithm (kAuto by default, planned per
  // query by db->planner()) over every structure the database holds.
  // Workers open private pools over each tree's device (ScopedReadPool) so
  // node reads never contend; object and posting reads go through the
  // database's bypass pools, which is why this mode requires
  // db->options().prefetch == false (a shared caching pool would break
  // per-query cold isolation across workers). `db` must outlive the
  // executor; its planner receives the merged feedback after Run.
  BatchExecutor(SpatialKeywordDatabase* db, BatchExecutorOptions options = {});

  StatusOr<BatchResults> Run(std::span<const DistanceFirstQuery> queries) const;

  const BatchExecutorOptions& options() const { return options_; }

 private:
  StatusOr<BatchResults> RunDatabase(
      std::span<const DistanceFirstQuery> queries) const;

  const Ir2Tree* tree_ = nullptr;
  const ObjectStore* objects_ = nullptr;
  const Tokenizer* tokenizer_ = nullptr;
  SpatialKeywordDatabase* db_ = nullptr;
  BatchExecutorOptions options_;
};

}  // namespace ir2

#endif  // IR2TREE_CORE_BATCH_EXECUTOR_H_
