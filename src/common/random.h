#ifndef IR2TREE_COMMON_RANDOM_H_
#define IR2TREE_COMMON_RANDOM_H_

#include <cstdint>

namespace ir2 {

// Fast deterministic PRNG (xoshiro256++, seeded via SplitMix64).
// Deterministic across platforms so data generation and property tests are
// reproducible; not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform over [0, bound); bound must be > 0. Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  uint64_t NextUint64(uint64_t bound);

  // Uniform over [lo, hi]; requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // Uniform over [lo, hi).
  double NextDouble(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Standard normal via Box-Muller.
  double NextGaussian();

 private:
  uint64_t state_[4];
};

}  // namespace ir2

#endif  // IR2TREE_COMMON_RANDOM_H_
