#include "common/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define IR2_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define IR2_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ir2::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference tier. These are the semantics every other tier must
// reproduce bit for bit; simd_test cross-checks them on random and
// adversarial inputs.
// ---------------------------------------------------------------------------

// Word loop + zero-extended byte tail starting at `byte_off` (a multiple of
// 8). The vector tiers delegate their sub-register remainders here so the
// tail semantics exist in exactly one place.
inline bool BytesContainTail(const uint8_t* bytes, size_t num_bytes,
                             const uint64_t* query_words, size_t byte_off) {
  size_t w = byte_off / sizeof(uint64_t);
  const size_t full_words = num_bytes / sizeof(uint64_t);
  for (; w < full_words; ++w) {
    uint64_t word;
    std::memcpy(&word, bytes + w * sizeof(uint64_t), sizeof(uint64_t));
    if ((word & query_words[w]) != query_words[w]) {
      return false;
    }
  }
  const size_t tail = num_bytes - full_words * sizeof(uint64_t);
  if (tail != 0) {
    uint64_t word = 0;
    std::memcpy(&word, bytes + full_words * sizeof(uint64_t), tail);
    if ((word & query_words[full_words]) != query_words[full_words]) {
      return false;
    }
  }
  return true;
}

// Decodes one varint at in[pos]; returns false on truncation or a value
// wider than 5 bytes (shift > 28), the exact corruption conditions of the
// historical posting-list decoder.
inline bool DecodeOneVarint(const uint8_t* in, size_t in_size, size_t* pos,
                            uint32_t* gap_out) {
  uint32_t gap = 0;
  int shift = 0;
  while (true) {
    if (*pos >= in_size || shift > 28) {
      return false;
    }
    const uint8_t b = in[(*pos)++];
    gap |= static_cast<uint32_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *gap_out = gap;
  return true;
}

}  // namespace

bool WordsContainAllScalar(const uint64_t* data, const uint64_t* query,
                           size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) {
    if ((data[i] & query[i]) != query[i]) {
      return false;
    }
  }
  return true;
}

bool BytesContainWordsScalar(const uint8_t* bytes, size_t num_bytes,
                             const uint64_t* query_words) {
  return BytesContainTail(bytes, num_bytes, query_words, 0);
}

uint64_t PopcountWordsScalar(const uint64_t* words, size_t num_words) {
  uint64_t count = 0;
  for (size_t i = 0; i < num_words; ++i) {
    count += static_cast<uint64_t>(std::popcount(words[i]));
  }
  return count;
}

size_t DecodeDGapVarintsScalar(const uint8_t* in, size_t in_size,
                               uint32_t count, uint32_t* out) {
  uint32_t previous = 0;
  size_t pos = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t gap;
    if (!DecodeOneVarint(in, in_size, &pos, &gap)) {
      return kDecodeError;
    }
    previous += gap;
    out[i] = previous;
  }
  return pos;
}

// ---------------------------------------------------------------------------
// x86 tiers. SSE2 is the x86-64 baseline (no target attribute needed); AVX2
// kernels carry a target attribute so the file compiles without -mavx2 and
// the instructions only execute behind the CPUID dispatch below.
// ---------------------------------------------------------------------------
#if IR2_SIMD_X86

namespace {

bool WordsContainAllSse2(const uint64_t* data, const uint64_t* query,
                         size_t num_words) {
  size_t i = 0;
  for (; i + 2 <= num_words; i += 2) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i q =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query + i));
    const __m128i eq = _mm_cmpeq_epi8(_mm_and_si128(d, q), q);
    if (_mm_movemask_epi8(eq) != 0xFFFF) {
      return false;
    }
  }
  return WordsContainAllScalar(data + i, query + i, num_words - i);
}

bool BytesContainWordsSse2(const uint8_t* bytes, size_t num_bytes,
                           const uint64_t* query_words) {
  const uint8_t* q = reinterpret_cast<const uint8_t*>(query_words);
  size_t off = 0;
  for (; off + 16 <= num_bytes; off += 16) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + off));
    const __m128i qv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + off));
    const __m128i eq = _mm_cmpeq_epi8(_mm_and_si128(d, qv), qv);
    if (_mm_movemask_epi8(eq) != 0xFFFF) {
      return false;
    }
  }
  return BytesContainTail(bytes, num_bytes, query_words, off & ~size_t{7});
}

size_t DecodeDGapVarintsSse2(const uint8_t* in, size_t in_size, uint32_t count,
                             uint32_t* out) {
  uint32_t previous = 0;
  size_t pos = 0;
  uint32_t i = 0;
  while (count - i >= 16 && in_size - pos >= 16) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + pos));
    if (_mm_movemask_epi8(chunk) == 0) {
      // Sixteen single-byte gaps: accumulate without the per-byte
      // continuation branch of the reference decoder.
      for (int j = 0; j < 16; ++j) {
        previous += in[pos + static_cast<size_t>(j)];
        out[i + static_cast<uint32_t>(j)] = previous;
      }
      pos += 16;
      i += 16;
      continue;
    }
    const size_t limit = pos + 16;
    while (pos < limit && i < count) {
      uint32_t gap;
      if (!DecodeOneVarint(in, in_size, &pos, &gap)) {
        return kDecodeError;
      }
      previous += gap;
      out[i++] = previous;
    }
  }
  for (; i < count; ++i) {
    uint32_t gap;
    if (!DecodeOneVarint(in, in_size, &pos, &gap)) {
      return kDecodeError;
    }
    previous += gap;
    out[i] = previous;
  }
  return pos;
}

__attribute__((target("avx2"))) bool WordsContainAllAvx2(
    const uint64_t* data, const uint64_t* query, size_t num_words) {
  size_t i = 0;
  for (; i + 4 <= num_words; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i q =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + i));
    // testc: CF = ((~d) & q) == 0, i.e. d contains every bit of q.
    if (!_mm256_testc_si256(d, q)) {
      return false;
    }
  }
  return WordsContainAllScalar(data + i, query + i, num_words - i);
}

__attribute__((target("avx2"))) bool BytesContainWordsAvx2(
    const uint8_t* bytes, size_t num_bytes, const uint64_t* query_words) {
  // The query backing store spans ceil(num_bytes / 8) words >= num_bytes
  // bytes, so every 32-byte load below stays inside both buffers.
  const uint8_t* q = reinterpret_cast<const uint8_t*>(query_words);
  size_t off = 0;
  for (; off + 32 <= num_bytes; off += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + off));
    const __m256i qv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + off));
    if (!_mm256_testc_si256(d, qv)) {
      return false;
    }
  }
  return BytesContainTail(bytes, num_bytes, query_words, off);
}

__attribute__((target("avx2,popcnt"))) uint64_t PopcountWordsAvx2(
    const uint64_t* words, size_t num_words) {
  // Hardware popcnt, four independent accumulator chains. This beats the
  // default-codegen std::popcount loop (which cannot assume the POPCNT
  // feature bit and emits the SWAR sequence) by well over 2x on
  // signature-sized arrays.
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= num_words; i += 4) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(words[i]));
    c1 += static_cast<uint64_t>(__builtin_popcountll(words[i + 1]));
    c2 += static_cast<uint64_t>(__builtin_popcountll(words[i + 2]));
    c3 += static_cast<uint64_t>(__builtin_popcountll(words[i + 3]));
  }
  for (; i < num_words; ++i) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(words[i]));
  }
  return c0 + c1 + c2 + c3;
}

__attribute__((target("avx2"))) size_t DecodeDGapVarintsAvx2(
    const uint8_t* in, size_t in_size, uint32_t count, uint32_t* out) {
  uint32_t previous = 0;
  size_t pos = 0;
  uint32_t i = 0;
  while (count - i >= 32 && in_size - pos >= 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + pos));
    if (_mm256_movemask_epi8(chunk) == 0) {
      // Thirty-two single-byte gaps (the common case for dense posting
      // lists): widen eight at a time and prefix-sum in-register. The two
      // in-lane shift-adds produce per-lane prefix sums; the permute
      // broadcasts the low lane's total into the high lane to complete the
      // cross-lane carry.
      for (int g = 0; g < 4; ++g) {
        const __m128i raw = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(in + pos + 8 * g));
        __m256i v = _mm256_cvtepu8_epi32(raw);
        v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
        v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));
        const __m256i low = _mm256_permute2x128_si256(v, v, 0x08);
        v = _mm256_add_epi32(v, _mm256_shuffle_epi32(low, 0xFF));
        v = _mm256_add_epi32(v,
                             _mm256_set1_epi32(static_cast<int>(previous)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
        previous = static_cast<uint32_t>(_mm256_extract_epi32(v, 7));
        i += 8;
      }
      pos += 32;
      continue;
    }
    // Multi-byte gaps present: decode values until the chunk is consumed,
    // re-aligning pos to a value boundary for the next vector probe.
    const size_t limit = pos + 32;
    while (pos < limit && i < count) {
      uint32_t gap;
      if (!DecodeOneVarint(in, in_size, &pos, &gap)) {
        return kDecodeError;
      }
      previous += gap;
      out[i++] = previous;
    }
  }
  for (; i < count; ++i) {
    uint32_t gap;
    if (!DecodeOneVarint(in, in_size, &pos, &gap)) {
      return kDecodeError;
    }
    previous += gap;
    out[i] = previous;
  }
  return pos;
}

}  // namespace

#endif  // IR2_SIMD_X86

// ---------------------------------------------------------------------------
// NEON tier (AArch64; NEON is architecturally guaranteed there).
// ---------------------------------------------------------------------------
#if IR2_SIMD_NEON

namespace {

bool WordsContainAllNeon(const uint64_t* data, const uint64_t* query,
                         size_t num_words) {
  size_t i = 0;
  for (; i + 2 <= num_words; i += 2) {
    const uint64x2_t d = vld1q_u64(data + i);
    const uint64x2_t q = vld1q_u64(query + i);
    const uint64x2_t miss = vbicq_u64(q, d);  // q & ~d
    if (vmaxvq_u32(vreinterpretq_u32_u64(miss)) != 0) {
      return false;
    }
  }
  return WordsContainAllScalar(data + i, query + i, num_words - i);
}

bool BytesContainWordsNeon(const uint8_t* bytes, size_t num_bytes,
                           const uint64_t* query_words) {
  const uint8_t* q = reinterpret_cast<const uint8_t*>(query_words);
  size_t off = 0;
  for (; off + 16 <= num_bytes; off += 16) {
    const uint8x16_t d = vld1q_u8(bytes + off);
    const uint8x16_t qv = vld1q_u8(q + off);
    if (vmaxvq_u8(vbicq_u8(qv, d)) != 0) {
      return false;
    }
  }
  return BytesContainTail(bytes, num_bytes, query_words, off & ~size_t{7});
}

uint64_t PopcountWordsNeon(const uint64_t* words, size_t num_words) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 2 <= num_words; i += 2) {
    const uint8x16_t bits = vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(words + i)));
    count += vaddvq_u8(bits);
  }
  for (; i < num_words; ++i) {
    count += static_cast<uint64_t>(std::popcount(words[i]));
  }
  return count;
}

size_t DecodeDGapVarintsNeon(const uint8_t* in, size_t in_size, uint32_t count,
                             uint32_t* out) {
  uint32_t previous = 0;
  size_t pos = 0;
  uint32_t i = 0;
  while (count - i >= 16 && in_size - pos >= 16) {
    const uint8x16_t chunk = vld1q_u8(in + pos);
    if (vmaxvq_u8(chunk) < 0x80) {
      for (int j = 0; j < 16; ++j) {
        previous += in[pos + static_cast<size_t>(j)];
        out[i + static_cast<uint32_t>(j)] = previous;
      }
      pos += 16;
      i += 16;
      continue;
    }
    const size_t limit = pos + 16;
    while (pos < limit && i < count) {
      uint32_t gap;
      if (!DecodeOneVarint(in, in_size, &pos, &gap)) {
        return kDecodeError;
      }
      previous += gap;
      out[i++] = previous;
    }
  }
  for (; i < count; ++i) {
    uint32_t gap;
    if (!DecodeOneVarint(in, in_size, &pos, &gap)) {
      return kDecodeError;
    }
    previous += gap;
    out[i] = previous;
  }
  return pos;
}

}  // namespace

#endif  // IR2_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch. One kernel table per tier; the active table is resolved once
// from CPUID / the environment and cached in an atomic pointer so every hot
// call is a single relaxed load plus an indirect call.
// ---------------------------------------------------------------------------
namespace {

struct KernelTable {
  Level level;
  bool (*words_contain_all)(const uint64_t*, const uint64_t*, size_t);
  bool (*bytes_contain)(const uint8_t*, size_t, const uint64_t*);
  uint64_t (*popcount)(const uint64_t*, size_t);
  size_t (*decode_dgaps)(const uint8_t*, size_t, uint32_t, uint32_t*);
};

constexpr KernelTable kScalarTable = {
    Level::kScalar,        WordsContainAllScalar, BytesContainWordsScalar,
    PopcountWordsScalar,   DecodeDGapVarintsScalar,
};

#if IR2_SIMD_X86
constexpr KernelTable kSse2Table = {
    Level::kSse2,        WordsContainAllSse2, BytesContainWordsSse2,
    PopcountWordsScalar,  // POPCNT is not in the SSE2 baseline.
    DecodeDGapVarintsSse2,
};
constexpr KernelTable kAvx2Table = {
    Level::kAvx2,      WordsContainAllAvx2, BytesContainWordsAvx2,
    PopcountWordsAvx2, DecodeDGapVarintsAvx2,
};
#endif

#if IR2_SIMD_NEON
constexpr KernelTable kNeonTable = {
    Level::kNeon,      WordsContainAllNeon, BytesContainWordsNeon,
    PopcountWordsNeon, DecodeDGapVarintsNeon,
};
#endif

const KernelTable* TableForLevel(Level level) {
  switch (level) {
#if IR2_SIMD_X86
    case Level::kAvx2:
      if (__builtin_cpu_supports("avx2")) return &kAvx2Table;
      return &kScalarTable;
    case Level::kSse2:
      return &kSse2Table;
#endif
#if IR2_SIMD_NEON
    case Level::kNeon:
      return &kNeonTable;
#endif
    default:
      return &kScalarTable;
  }
}

const KernelTable* DetectTable() {
  const char* disable = std::getenv("IR2_DISABLE_SIMD");
  if (disable != nullptr && disable[0] != '\0' && disable[0] != '0') {
    return &kScalarTable;
  }
#if IR2_SIMD_X86
  if (__builtin_cpu_supports("avx2")) {
    return &kAvx2Table;
  }
  return &kSse2Table;  // SSE2 is the x86-64 baseline.
#elif IR2_SIMD_NEON
  return &kNeonTable;
#else
  return &kScalarTable;
#endif
}

std::atomic<const KernelTable*> g_table{nullptr};

inline const KernelTable& ActiveTable() {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = DetectTable();
    g_table.store(table, std::memory_order_release);
  }
  return *table;
}

}  // namespace

Level ActiveLevel() { return ActiveTable().level; }

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

void ForceLevelForTest(Level level) {
  g_table.store(TableForLevel(level), std::memory_order_release);
}

bool WordsContainAll(const uint64_t* data, const uint64_t* query,
                     size_t num_words) {
  return ActiveTable().words_contain_all(data, query, num_words);
}

bool BytesContainWords(const uint8_t* bytes, size_t num_bytes,
                       const uint64_t* query_words) {
  return ActiveTable().bytes_contain(bytes, num_bytes, query_words);
}

BytesContainFn ActiveBytesContainFn() { return ActiveTable().bytes_contain; }

uint64_t PopcountWords(const uint64_t* words, size_t num_words) {
  return ActiveTable().popcount(words, num_words);
}

size_t DecodeDGapVarints(const uint8_t* in, size_t in_size, uint32_t count,
                         uint32_t* out) {
  return ActiveTable().decode_dgaps(in, in_size, count, out);
}

}  // namespace ir2::simd
