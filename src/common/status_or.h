#ifndef IR2TREE_COMMON_STATUS_OR_H_
#define IR2TREE_COMMON_STATUS_OR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace ir2 {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Accessing value() on an error StatusOr aborts the process (it is
// a programmer error, like dereferencing an empty optional).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`
  // like absl::StatusOr.
  StatusOr(const T& value) : value_(value) {}          // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    IR2_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    IR2_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    IR2_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T value() && {
    IR2_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace ir2

#endif  // IR2TREE_COMMON_STATUS_OR_H_
