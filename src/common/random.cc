#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace ir2 {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  IR2_DCHECK(bound > 0);
  // Lemire's method: map a 64-bit draw to [0, bound) via 128-bit multiply,
  // rejecting the small biased region.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  IR2_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // Full range: [INT64_MIN, INT64_MAX].
    return static_cast<int64_t>(NextUint64());
  }
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits scaled into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; draws u1 from (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace ir2
