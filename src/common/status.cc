#include "common/status.h"

namespace ir2 {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace ir2
