#ifndef IR2TREE_COMMON_SIMD_H_
#define IR2TREE_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

// Runtime-dispatched vector kernels for the two hot inner loops the paper's
// cost model says dominate query time: signature containment tests (IR2/MIR2
// node scans and the sequential signature-file scan) and d-gap varint
// posting-list decode (the IIO baseline). Dispatch is resolved once per
// process from CPUID (x86) or the target architecture (NEON) and can be
// forced to the scalar reference with IR2_DISABLE_SIMD=1 in the environment,
// which scripts/check.sh uses to golden-diff the two paths.
//
// Every kernel is a pure function of its inputs with bit-identical results
// across tiers — the dispatched entry points and the *Scalar references may
// be cross-checked on arbitrary inputs (simd_test does, including unaligned
// tails and adversarial bit patterns).
namespace ir2::simd {

enum class Level {
  kScalar,  // Portable reference, also the IR2_DISABLE_SIMD=1 path.
  kSse2,    // 128-bit x86 baseline.
  kAvx2,    // 256-bit x86.
  kNeon,    // 128-bit AArch64.
};

// The tier all dispatched kernels below currently run on.
Level ActiveLevel();
const char* LevelName(Level level);

// Test/bench hook: force a specific tier (no-op fallback to scalar when the
// CPU lacks it). Affects all subsequent dispatched calls process-wide; not
// thread-safe against in-flight kernel calls, so only call at startup or
// between single-threaded test cases.
void ForceLevelForTest(Level level);

// True iff every bit set in `query` is also set in `data`; both are
// word-aligned arrays of `num_words` words (the Signature backing store,
// bits past num_bits zeroed — no tail masking needed).
bool WordsContainAll(const uint64_t* data, const uint64_t* query,
                     size_t num_words);
bool WordsContainAllScalar(const uint64_t* data, const uint64_t* query,
                           size_t num_words);

// True iff every bit set in the query words is also set in `bytes`, a raw
// (possibly unaligned) little-endian bit string of `num_bytes` bytes.
// `query_words` must hold ceil(num_bytes / 8) words with bits past
// num_bytes * 8 zeroed — exactly Signature::words() of an equal-width query.
bool BytesContainWords(const uint8_t* bytes, size_t num_bytes,
                       const uint64_t* query_words);
bool BytesContainWordsScalar(const uint8_t* bytes, size_t num_bytes,
                             const uint64_t* query_words);

// The function-pointer form of BytesContainWords for batched node scans:
// resolving the tier once per node instead of once per entry keeps the
// dispatch load and the query register warm across a whole entry array.
using BytesContainFn = bool (*)(const uint8_t* bytes, size_t num_bytes,
                                const uint64_t* query_words);
BytesContainFn ActiveBytesContainFn();

// Total set bits across `num_words` words (signature weight).
uint64_t PopcountWords(const uint64_t* words, size_t num_words);
uint64_t PopcountWordsScalar(const uint64_t* words, size_t num_words);

// Decodes exactly `count` d-gap varints (7 data bits per byte, high bit =
// continuation, at most 5 bytes per value) from in[0, in_size), writing the
// running prefix sums (absolute ObjectRefs) to out[0, count). Returns the
// number of input bytes consumed, or kDecodeError if a value is truncated
// or longer than 5 bytes — the same corruption conditions the scalar
// reference detects, so callers keep their existing error semantics.
inline constexpr size_t kDecodeError = ~static_cast<size_t>(0);
size_t DecodeDGapVarints(const uint8_t* in, size_t in_size, uint32_t count,
                         uint32_t* out);
size_t DecodeDGapVarintsScalar(const uint8_t* in, size_t in_size,
                               uint32_t count, uint32_t* out);

}  // namespace ir2::simd

#endif  // IR2TREE_COMMON_SIMD_H_
