#ifndef IR2TREE_COMMON_HASH_H_
#define IR2TREE_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace ir2 {

// 64-bit FNV-1a over a byte string. Stable across platforms; used to hash
// terms into signature bit positions, so its value is part of the on-disk
// index semantics and must never change.
uint64_t Fnv1a64(std::string_view data);

// SplitMix-style finalizer; turns a 64-bit value into a well-mixed 64-bit
// value. Used to derive independent hash functions h_i(x) = Mix64(x + i*C).
uint64_t Mix64(uint64_t x);

// The i-th independent hash of `base` (typically a term's Fnv1a64).
inline uint64_t NthHash(uint64_t base, uint32_t i) {
  return Mix64(base + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1));
}

}  // namespace ir2

#endif  // IR2TREE_COMMON_HASH_H_
