#ifndef IR2TREE_COMMON_LOGGING_H_
#define IR2TREE_COMMON_LOGGING_H_

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ir2 {
namespace internal_logging {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the IR2_CHECK family below; CHECK failures are programmer
// errors, not runtime errors (those use Status).
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failure at " << file << ":" << line << ": "
            << condition;
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Makes the streaming expression void so it can appear in a ternary whose
// other arm is (void)0 (the glog "voidify" idiom).
struct Voidify {
  void operator&(const CheckFailureStream&) const {}
};

// Buffers one leveled log line and writes it to stderr in a single <<,
// so concurrent loggers (e.g. IoScheduler workers) never interleave
// mid-line. Used only via IR2_LOG below.
class LogMessageStream {
 public:
  LogMessageStream(const char* severity, const char* file, int line) {
    stream_ << "[" << severity << "] " << file << ":" << line << ": ";
  }

  ~LogMessageStream() { std::cerr << stream_.str() << "\n"; }

  template <typename T>
  LogMessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

struct LogVoidify {
  void operator&(const LogMessageStream&) const {}
};

// Severity ranks for the IR2_LOG threshold; higher is more severe.
inline constexpr int kLogINFO = 0;
inline constexpr int kLogWARN = 1;
inline constexpr int kLogERROR = 2;

// Threshold from IR2_LOG_LEVEL (INFO, WARN, ERROR, or OFF; default WARN),
// resolved once per process.
inline int LogThresholdFromEnv() {
  const char* env = std::getenv("IR2_LOG_LEVEL");
  if (env == nullptr) return kLogWARN;
  std::string value(env);
  for (char& c : value) c = static_cast<char>(std::toupper(c));
  if (value == "INFO") return kLogINFO;
  if (value == "WARN" || value == "WARNING") return kLogWARN;
  if (value == "ERROR") return kLogERROR;
  if (value == "OFF" || value == "NONE") return kLogERROR + 1;
  return kLogWARN;
}

inline bool LogEnabled(int severity) {
  static const int threshold = LogThresholdFromEnv();
  return severity >= threshold;
}

}  // namespace internal_logging
}  // namespace ir2

// Aborts with a message when `condition` is false; supports streaming extra
// context: IR2_CHECK(x > 0) << "x was" << x;
// Active in all build modes: index corruption must never propagate silently
// in a storage engine.
#define IR2_CHECK(condition)                                       \
  (condition) ? (void)0                                            \
              : ::ir2::internal_logging::Voidify() &               \
                    ::ir2::internal_logging::CheckFailureStream(   \
                        "CHECK", __FILE__, __LINE__, #condition)

#define IR2_CHECK_OK(expr)                                             \
  do {                                                                 \
    const ::ir2::Status ir2_check_ok_status = (expr);                  \
    IR2_CHECK(ir2_check_ok_status.ok()) << ir2_check_ok_status.ToString(); \
  } while (false)

#define IR2_CHECK_EQ(a, b) IR2_CHECK((a) == (b))
#define IR2_CHECK_NE(a, b) IR2_CHECK((a) != (b))
#define IR2_CHECK_LT(a, b) IR2_CHECK((a) < (b))
#define IR2_CHECK_LE(a, b) IR2_CHECK((a) <= (b))
#define IR2_CHECK_GT(a, b) IR2_CHECK((a) > (b))
#define IR2_CHECK_GE(a, b) IR2_CHECK((a) >= (b))

#ifdef NDEBUG
#define IR2_DCHECK(condition) \
  while (false) IR2_CHECK(condition)
#else
#define IR2_DCHECK(condition) IR2_CHECK(condition)
#endif

// Leveled logging to stderr: IR2_LOG(INFO) << "built " << n << " nodes";
// Severity is INFO, WARN, or ERROR. Lines below the IR2_LOG_LEVEL
// environment threshold (default WARN; OFF silences everything) cost one
// static-local read and are never formatted. Unlike IR2_CHECK this never
// aborts — it is for runtime conditions worth surfacing (a prefetch
// worker's failed read, a skipped optimization), not programmer errors.
#define IR2_LOG(severity)                                                  \
  !::ir2::internal_logging::LogEnabled(                                    \
      ::ir2::internal_logging::kLog##severity)                             \
      ? (void)0                                                            \
      : ::ir2::internal_logging::LogVoidify() &                            \
            ::ir2::internal_logging::LogMessageStream(#severity, __FILE__, \
                                                      __LINE__)

#endif  // IR2TREE_COMMON_LOGGING_H_
