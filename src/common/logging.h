#ifndef IR2TREE_COMMON_LOGGING_H_
#define IR2TREE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ir2 {
namespace internal_logging {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the IR2_CHECK family below; CHECK failures are programmer
// errors, not runtime errors (those use Status).
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failure at " << file << ":" << line << ": "
            << condition;
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Makes the streaming expression void so it can appear in a ternary whose
// other arm is (void)0 (the glog "voidify" idiom).
struct Voidify {
  void operator&(const CheckFailureStream&) const {}
};

}  // namespace internal_logging
}  // namespace ir2

// Aborts with a message when `condition` is false; supports streaming extra
// context: IR2_CHECK(x > 0) << "x was" << x;
// Active in all build modes: index corruption must never propagate silently
// in a storage engine.
#define IR2_CHECK(condition)                                       \
  (condition) ? (void)0                                            \
              : ::ir2::internal_logging::Voidify() &               \
                    ::ir2::internal_logging::CheckFailureStream(   \
                        "CHECK", __FILE__, __LINE__, #condition)

#define IR2_CHECK_OK(expr)                                             \
  do {                                                                 \
    const ::ir2::Status ir2_check_ok_status = (expr);                  \
    IR2_CHECK(ir2_check_ok_status.ok()) << ir2_check_ok_status.ToString(); \
  } while (false)

#define IR2_CHECK_EQ(a, b) IR2_CHECK((a) == (b))
#define IR2_CHECK_NE(a, b) IR2_CHECK((a) != (b))
#define IR2_CHECK_LT(a, b) IR2_CHECK((a) < (b))
#define IR2_CHECK_LE(a, b) IR2_CHECK((a) <= (b))
#define IR2_CHECK_GT(a, b) IR2_CHECK((a) > (b))
#define IR2_CHECK_GE(a, b) IR2_CHECK((a) >= (b))

#ifdef NDEBUG
#define IR2_DCHECK(condition) \
  while (false) IR2_CHECK(condition)
#else
#define IR2_DCHECK(condition) IR2_CHECK(condition)
#endif

#endif  // IR2TREE_COMMON_LOGGING_H_
