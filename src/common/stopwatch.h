#ifndef IR2TREE_COMMON_STOPWATCH_H_
#define IR2TREE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ir2 {

// Wall-clock stopwatch for benchmark reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ir2

#endif  // IR2TREE_COMMON_STOPWATCH_H_
