#ifndef IR2TREE_COMMON_STATUS_H_
#define IR2TREE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ir2 {

// Canonical error space, modeled after absl::StatusCode. The library does not
// throw exceptions; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIoError = 9,
  kCorruption = 10,
};

// Returns a stable human-readable name, e.g. "NOT_FOUND".
std::string_view StatusCodeToString(StatusCode code);

// Value-semantic result of a fallible operation: a code plus an optional
// message. The OK status carries no message and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace ir2

// Evaluates `expr`; if the resulting Status is not OK, returns it from the
// enclosing function.
#define IR2_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::ir2::Status ir2_status_macro_result = (expr);      \
    if (!ir2_status_macro_result.ok()) {                 \
      return ir2_status_macro_result;                    \
    }                                                    \
  } while (false)

// Evaluates `rexpr` (a StatusOr<T>); on error returns the Status, otherwise
// move-assigns the value into `lhs`. `lhs` may be a declaration.
#define IR2_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  IR2_ASSIGN_OR_RETURN_IMPL_(                                  \
      IR2_STATUS_MACRO_CONCAT_(ir2_statusor_, __LINE__), lhs, rexpr)

#define IR2_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) {                                  \
    return std::move(statusor).status();                 \
  }                                                      \
  lhs = std::move(statusor).value()

#define IR2_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define IR2_STATUS_MACRO_CONCAT_(x, y) IR2_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // IR2TREE_COMMON_STATUS_H_
