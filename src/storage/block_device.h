#ifndef IR2TREE_STORAGE_BLOCK_DEVICE_H_
#define IR2TREE_STORAGE_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"

namespace ir2 {

// Identifier of a fixed-size block within one device. Blocks are numbered
// densely from 0 in allocation order.
using BlockId = uint64_t;

inline constexpr BlockId kInvalidBlockId = ~BlockId{0};

// The paper's experiments use 4096-byte disk blocks; this is the default for
// every index structure in the library.
inline constexpr size_t kDefaultBlockSize = 4096;

// Disk access counters in the units the paper reports: a block read is
// *sequential* when it targets the block immediately after the previously
// read block on the same device, otherwise it is *random* (a seek). Writes
// are classified the same way, independently of the read cursor.
struct IoStats {
  uint64_t random_reads = 0;
  uint64_t sequential_reads = 0;
  uint64_t random_writes = 0;
  uint64_t sequential_writes = 0;

  uint64_t TotalReads() const { return random_reads + sequential_reads; }
  uint64_t TotalWrites() const { return random_writes + sequential_writes; }
  uint64_t TotalAccesses() const { return TotalReads() + TotalWrites(); }

  IoStats& operator+=(const IoStats& other) {
    random_reads += other.random_reads;
    sequential_reads += other.sequential_reads;
    random_writes += other.random_writes;
    sequential_writes += other.sequential_writes;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }
  friend IoStats operator-(const IoStats& a, const IoStats& b) {
    IoStats d;
    d.random_reads = a.random_reads - b.random_reads;
    d.sequential_reads = a.sequential_reads - b.sequential_reads;
    d.random_writes = a.random_writes - b.random_writes;
    d.sequential_writes = a.sequential_writes - b.sequential_writes;
    return d;
  }

  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.random_reads == b.random_reads &&
           a.sequential_reads == b.sequential_reads &&
           a.random_writes == b.random_writes &&
           a.sequential_writes == b.sequential_writes;
  }

  std::string ToString() const;
};

// Abstract block-addressed storage with I/O accounting.
//
// All index structures in the library (R-Tree, IR2-Tree, MIR2-Tree, inverted
// index, object file) are written through this interface, so the benchmark
// harness can report the exact disk-access profile of each algorithm.
//
// Thread-safety: I/O accounting is kept per calling thread — each thread
// owns its own counters and its own sequential-access cursor, so concurrent
// queries on different threads report exact, independent disk-access
// profiles (thread_stats() / ResetThreadCursor()), and stats() aggregates
// across threads. The data path (ReadImpl/WriteImpl/Allocate) of the
// provided devices tolerates concurrent accesses to *distinct* blocks;
// racing writes to the same block are the caller's responsibility to
// serialize (the sharded BufferPool does so for all traffic routed through
// it).
class BlockDevice {
 public:
  explicit BlockDevice(size_t block_size);
  virtual ~BlockDevice();

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  size_t block_size() const { return block_size_; }

  // Number of allocated blocks; valid BlockIds are [0, NumBlocks()).
  virtual uint64_t NumBlocks() const = 0;

  // Allocates `count` new contiguous blocks (zero-filled) and returns the id
  // of the first. Contiguity matters: multi-block IR2-Tree nodes are read
  // with one random access followed by sequential accesses.
  virtual StatusOr<BlockId> Allocate(uint32_t count) = 0;

  // Reads one full block into `out` (must be exactly block_size() bytes).
  Status Read(BlockId id, std::span<uint8_t> out);

  // Writes one full block from `data` (must be exactly block_size() bytes).
  Status Write(BlockId id, std::span<const uint8_t> data);

  // Snapshot of the I/O counters summed over every thread that has touched
  // this device. Exact when no I/O is concurrently in flight; otherwise a
  // consistent-enough snapshot (each counter is atomically read).
  IoStats stats() const;

  // Snapshot of the calling thread's own accumulated I/O on this device.
  // Because counters are attributed to the thread that issued the access,
  // the delta of two thread_stats() calls brackets exactly the I/O this
  // thread performed in between — the basis of per-query accounting in
  // concurrent batch runs.
  IoStats thread_stats() const;

  // Forgets the calling thread's sequential-access cursor so its next
  // access counts as random — the state a cold query starts from.
  //
  // Cursors are strictly per thread: a prefetch (or any background) thread
  // advancing its own cursor with a long sequential run can never donate
  // sequential-read credit to — or steal it from — a query thread, and
  // resetting one thread's cursor never disturbs another's. Layered devices
  // (BufferPool) override this to also reset the calling thread's cursor on
  // the backing device, so one call restores the whole stack of a query
  // thread to the cold state (see ThreadCursorIsolation in storage_test).
  virtual void ResetThreadCursor();

  // Zeroes every thread's counters and cursors. Call only while no I/O is
  // in flight (between build and measurement phases). Layered devices
  // cascade to their backing device.
  virtual void ResetStats();

  // Durability barrier: blocks until every previously completed Write has
  // reached stable storage. A no-op for devices without a persistence story
  // (memory); FileBlockDevice issues fdatasync.
  virtual Status Sync() { return Status::Ok(); }

  uint64_t SizeBytes() const { return NumBlocks() * block_size_; }

 protected:
  virtual Status ReadImpl(BlockId id, std::span<uint8_t> out) = 0;
  virtual Status WriteImpl(BlockId id, std::span<const uint8_t> data) = 0;

 private:
  // Per-thread accounting context. Counters are written only by the owning
  // thread and read (relaxed) by aggregating threads; the cursors are also
  // stored atomically so ResetStats() can clear them from another thread.
  struct ThreadIo {
    std::atomic<uint64_t> random_reads{0};
    std::atomic<uint64_t> sequential_reads{0};
    std::atomic<uint64_t> random_writes{0};
    std::atomic<uint64_t> sequential_writes{0};
    std::atomic<BlockId> last_read{kInvalidBlockId};
    std::atomic<BlockId> last_write{kInvalidBlockId};

    IoStats Snapshot() const;
  };

  // Finds (or lazily creates) the calling thread's context.
  ThreadIo& LocalIo() const;

  size_t block_size_;
  // Process-unique id used to key the thread-local context cache; never
  // reused, so stale cache entries of destroyed devices cannot alias.
  uint64_t device_id_;

  mutable std::mutex io_registry_mu_;
  mutable std::unordered_map<std::thread::id, std::unique_ptr<ThreadIo>>
      io_registry_;
};

// In-memory device. The default for tests and benchmarks: it makes disk
// *accounting* exact and deterministic while keeping runs fast, which is the
// substitution DESIGN.md documents for the paper's physical hard drive.
//
// Concurrent reads and writes of distinct blocks are safe; Allocate takes an
// exclusive lock so the block directory never moves under a reader.
class MemoryBlockDevice final : public BlockDevice {
 public:
  explicit MemoryBlockDevice(size_t block_size = kDefaultBlockSize);

  uint64_t NumBlocks() const override;
  StatusOr<BlockId> Allocate(uint32_t count) override;

 protected:
  Status ReadImpl(BlockId id, std::span<uint8_t> out) override;
  Status WriteImpl(BlockId id, std::span<const uint8_t> data) override;

 private:
  // One flat buffer per block keeps Allocate O(count) and avoids large
  // reallocation spikes.
  mutable std::shared_mutex blocks_mu_;
  std::vector<std::vector<uint8_t>> blocks_;
};

// Copies every block of `src` into `dst` (which must be empty and share the
// block size). Used to persist memory-built indexes to files and back.
Status CopyBlocks(BlockDevice* src, BlockDevice* dst);

struct FileBlockDeviceOptions {
  // Ask the kernel to bypass the page cache (O_DIRECT), so cold-regime
  // benches against real files measure the device rather than RAM. Falls
  // back to buffered I/O when the filesystem refuses (tmpfs, some network
  // filesystems) — check using_direct_io() for the outcome. Direct reads
  // and writes of unaligned caller buffers bounce through a thread-local
  // page-aligned buffer; file offsets are always block-aligned here.
  bool direct_io = false;
};

// File-backed device using positional pread/pwrite (inherently safe for
// concurrent accesses to distinct blocks), the production persistence path:
// O_DIRECT with graceful fallback, short-transfer/EINTR hardening, and a
// Sync() durability barrier (fdatasync). Allocate ftruncates the file to
// the allocated extent, so Open always agrees with the last Allocate about
// NumBlocks().
class FileBlockDevice final : public BlockDevice {
 public:
  // Creates (truncating any existing file) or opens the file at `path`.
  static StatusOr<std::unique_ptr<FileBlockDevice>> Create(
      const std::string& path, size_t block_size = kDefaultBlockSize,
      FileBlockDeviceOptions options = {});
  static StatusOr<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, size_t block_size = kDefaultBlockSize,
      FileBlockDeviceOptions options = {});

  ~FileBlockDevice() override;

  uint64_t NumBlocks() const override;
  StatusOr<BlockId> Allocate(uint32_t count) override;

  // Write barrier: all completed writes (data + size) are on stable storage
  // when this returns Ok.
  Status Sync() override;

  // Whether O_DIRECT actually took effect (false when not requested or when
  // the filesystem refused and buffered I/O was the fallback).
  bool using_direct_io() const { return direct_io_; }

 protected:
  Status ReadImpl(BlockId id, std::span<uint8_t> out) override;
  Status WriteImpl(BlockId id, std::span<const uint8_t> data) override;

 private:
  FileBlockDevice(int fd, size_t block_size, uint64_t num_blocks,
                  bool direct_io);

  Status PreadFull(uint8_t* buf, size_t size, uint64_t offset);
  Status PwriteFull(const uint8_t* buf, size_t size, uint64_t offset);

  int fd_;
  bool direct_io_;
  std::mutex allocate_mu_;
  std::atomic<uint64_t> num_blocks_;
};

}  // namespace ir2

#endif  // IR2TREE_STORAGE_BLOCK_DEVICE_H_
