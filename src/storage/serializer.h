#ifndef IR2TREE_STORAGE_SERIALIZER_H_
#define IR2TREE_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "common/logging.h"

namespace ir2 {

// Fixed-width little-endian encoding helpers. All on-disk structures
// (R-Tree / IR2-Tree nodes, inverted index postings) use these, so the disk
// format is platform independent.

inline void EncodeU16(uint16_t v, uint8_t* dst) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

inline void EncodeU32(uint32_t v, uint8_t* dst) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline void EncodeU64(uint64_t v, uint8_t* dst) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline void EncodeDouble(double v, uint8_t* dst) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  EncodeU64(bits, dst);
}

inline uint16_t DecodeU16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0]) |
         static_cast<uint16_t>(static_cast<uint16_t>(src[1]) << 8);
}

inline uint32_t DecodeU32(const uint8_t* src) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(src[i]) << (8 * i);
  return v;
}

inline uint64_t DecodeU64(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(src[i]) << (8 * i);
  return v;
}

inline double DecodeDouble(const uint8_t* src) {
  uint64_t bits = DecodeU64(src);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Bounds-checked sequential writer over a caller-owned buffer.
class BufferWriter {
 public:
  explicit BufferWriter(std::span<uint8_t> buffer)
      : buffer_(buffer), pos_(0) {}

  void PutU8(uint8_t v) {
    IR2_DCHECK(pos_ + 1 <= buffer_.size());
    buffer_[pos_++] = v;
  }
  void PutU16(uint16_t v) {
    IR2_DCHECK(pos_ + 2 <= buffer_.size());
    EncodeU16(v, buffer_.data() + pos_);
    pos_ += 2;
  }
  void PutU32(uint32_t v) {
    IR2_DCHECK(pos_ + 4 <= buffer_.size());
    EncodeU32(v, buffer_.data() + pos_);
    pos_ += 4;
  }
  void PutU64(uint64_t v) {
    IR2_DCHECK(pos_ + 8 <= buffer_.size());
    EncodeU64(v, buffer_.data() + pos_);
    pos_ += 8;
  }
  void PutDouble(double v) {
    IR2_DCHECK(pos_ + 8 <= buffer_.size());
    EncodeDouble(v, buffer_.data() + pos_);
    pos_ += 8;
  }
  void PutBytes(std::span<const uint8_t> bytes) {
    IR2_DCHECK(pos_ + bytes.size() <= buffer_.size());
    if (!bytes.empty()) {  // memcpy(.., nullptr, 0) is UB.
      std::memcpy(buffer_.data() + pos_, bytes.data(), bytes.size());
      pos_ += bytes.size();
    }
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  std::span<uint8_t> buffer_;
  size_t pos_;
};

// Bounds-checked sequential reader over a caller-owned buffer.
class BufferReader {
 public:
  explicit BufferReader(std::span<const uint8_t> buffer)
      : buffer_(buffer), pos_(0) {}

  uint8_t GetU8() {
    IR2_DCHECK(pos_ + 1 <= buffer_.size());
    return buffer_[pos_++];
  }
  uint16_t GetU16() {
    IR2_DCHECK(pos_ + 2 <= buffer_.size());
    uint16_t v = DecodeU16(buffer_.data() + pos_);
    pos_ += 2;
    return v;
  }
  uint32_t GetU32() {
    IR2_DCHECK(pos_ + 4 <= buffer_.size());
    uint32_t v = DecodeU32(buffer_.data() + pos_);
    pos_ += 4;
    return v;
  }
  uint64_t GetU64() {
    IR2_DCHECK(pos_ + 8 <= buffer_.size());
    uint64_t v = DecodeU64(buffer_.data() + pos_);
    pos_ += 8;
    return v;
  }
  double GetDouble() {
    IR2_DCHECK(pos_ + 8 <= buffer_.size());
    double v = DecodeDouble(buffer_.data() + pos_);
    pos_ += 8;
    return v;
  }
  void GetBytes(std::span<uint8_t> out) {
    IR2_DCHECK(pos_ + out.size() <= buffer_.size());
    if (!out.empty()) {  // memcpy(nullptr, .., 0) is UB.
      std::memcpy(out.data(), buffer_.data() + pos_, out.size());
      pos_ += out.size();
    }
  }
  void Skip(size_t n) {
    IR2_DCHECK(pos_ + n <= buffer_.size());
    pos_ += n;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  std::span<const uint8_t> buffer_;
  size_t pos_;
};

}  // namespace ir2

#endif  // IR2TREE_STORAGE_SERIALIZER_H_
