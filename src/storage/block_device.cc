#include "storage/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace ir2 {

namespace {

// One cached (device_id -> ThreadIo*) mapping. Device ids are process-unique
// and never reused, so an entry left behind by a destroyed device can never
// be mistaken for a live one — it is simply dead weight until evicted.
struct TlsIoSlot {
  uint64_t device_id = 0;
  void* io = nullptr;
};

// Small move-to-front cache in front of the device's registry lookup. Sized
// so a thread juggling the usual handful of devices (object file + four
// index devices) always hits the first few entries.
constexpr size_t kTlsIoCacheSize = 16;
thread_local TlsIoSlot t_io_cache[kTlsIoCacheSize];

std::atomic<uint64_t> g_next_device_id{1};

}  // namespace

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "reads(random=" << random_reads << ", seq=" << sequential_reads
     << ") writes(random=" << random_writes << ", seq=" << sequential_writes
     << ")";
  return os.str();
}

Status CopyBlocks(BlockDevice* src, BlockDevice* dst) {
  if (src->block_size() != dst->block_size()) {
    return Status::InvalidArgument("CopyBlocks: block size mismatch");
  }
  if (dst->NumBlocks() != 0) {
    return Status::FailedPrecondition("CopyBlocks: destination not empty");
  }
  const uint64_t blocks = src->NumBlocks();
  if (blocks == 0) {
    return Status::Ok();
  }
  IR2_ASSIGN_OR_RETURN(BlockId first, dst->Allocate(
      static_cast<uint32_t>(blocks)));
  IR2_CHECK_EQ(first, 0u);
  std::vector<uint8_t> buffer(src->block_size());
  for (BlockId id = 0; id < blocks; ++id) {
    IR2_RETURN_IF_ERROR(src->Read(id, buffer));
    IR2_RETURN_IF_ERROR(dst->Write(id, buffer));
  }
  return Status::Ok();
}

BlockDevice::BlockDevice(size_t block_size)
    : block_size_(block_size),
      device_id_(g_next_device_id.fetch_add(1, std::memory_order_relaxed)) {}

BlockDevice::~BlockDevice() = default;

IoStats BlockDevice::ThreadIo::Snapshot() const {
  IoStats s;
  s.random_reads = random_reads.load(std::memory_order_relaxed);
  s.sequential_reads = sequential_reads.load(std::memory_order_relaxed);
  s.random_writes = random_writes.load(std::memory_order_relaxed);
  s.sequential_writes = sequential_writes.load(std::memory_order_relaxed);
  return s;
}

BlockDevice::ThreadIo& BlockDevice::LocalIo() const {
  for (size_t i = 0; i < kTlsIoCacheSize; ++i) {
    if (t_io_cache[i].device_id == device_id_) {
      TlsIoSlot hit = t_io_cache[i];
      // Move to front so the handful of live devices stay cheap to find.
      for (size_t j = i; j > 0; --j) t_io_cache[j] = t_io_cache[j - 1];
      t_io_cache[0] = hit;
      return *static_cast<ThreadIo*>(hit.io);
    }
  }
  ThreadIo* io;
  {
    std::lock_guard<std::mutex> lock(io_registry_mu_);
    std::unique_ptr<ThreadIo>& slot = io_registry_[std::this_thread::get_id()];
    if (slot == nullptr) {
      slot = std::make_unique<ThreadIo>();
    }
    io = slot.get();
  }
  for (size_t j = kTlsIoCacheSize - 1; j > 0; --j) {
    t_io_cache[j] = t_io_cache[j - 1];
  }
  t_io_cache[0] = TlsIoSlot{device_id_, io};
  return *io;
}

IoStats BlockDevice::stats() const {
  IoStats total;
  std::lock_guard<std::mutex> lock(io_registry_mu_);
  for (const auto& [tid, io] : io_registry_) {
    total += io->Snapshot();
  }
  return total;
}

IoStats BlockDevice::thread_stats() const { return LocalIo().Snapshot(); }

void BlockDevice::ResetThreadCursor() {
  ThreadIo& io = LocalIo();
  io.last_read.store(kInvalidBlockId, std::memory_order_relaxed);
  io.last_write.store(kInvalidBlockId, std::memory_order_relaxed);
}

void BlockDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(io_registry_mu_);
  for (auto& [tid, io] : io_registry_) {
    io->random_reads.store(0, std::memory_order_relaxed);
    io->sequential_reads.store(0, std::memory_order_relaxed);
    io->random_writes.store(0, std::memory_order_relaxed);
    io->sequential_writes.store(0, std::memory_order_relaxed);
    // Also forget the cursors so the first access after a reset is counted
    // as random, the state a cold query starts from.
    io->last_read.store(kInvalidBlockId, std::memory_order_relaxed);
    io->last_write.store(kInvalidBlockId, std::memory_order_relaxed);
  }
}

Status BlockDevice::Read(BlockId id, std::span<uint8_t> out) {
  if (out.size() != block_size_) {
    return Status::InvalidArgument("Read buffer size != block size");
  }
  if (id >= NumBlocks()) {
    return Status::OutOfRange("Read past end of device");
  }
  ThreadIo& io = LocalIo();
  const BlockId last = io.last_read.load(std::memory_order_relaxed);
  if (last != kInvalidBlockId && id == last + 1) {
    io.sequential_reads.fetch_add(1, std::memory_order_relaxed);
  } else {
    io.random_reads.fetch_add(1, std::memory_order_relaxed);
  }
  io.last_read.store(id, std::memory_order_relaxed);
  return ReadImpl(id, out);
}

Status BlockDevice::Write(BlockId id, std::span<const uint8_t> data) {
  if (data.size() != block_size_) {
    return Status::InvalidArgument("Write buffer size != block size");
  }
  if (id >= NumBlocks()) {
    return Status::OutOfRange("Write past end of device");
  }
  ThreadIo& io = LocalIo();
  const BlockId last = io.last_write.load(std::memory_order_relaxed);
  if (last != kInvalidBlockId && id == last + 1) {
    io.sequential_writes.fetch_add(1, std::memory_order_relaxed);
  } else {
    io.random_writes.fetch_add(1, std::memory_order_relaxed);
  }
  io.last_write.store(id, std::memory_order_relaxed);
  return WriteImpl(id, data);
}

MemoryBlockDevice::MemoryBlockDevice(size_t block_size)
    : BlockDevice(block_size) {}

uint64_t MemoryBlockDevice::NumBlocks() const {
  std::shared_lock<std::shared_mutex> lock(blocks_mu_);
  return blocks_.size();
}

StatusOr<BlockId> MemoryBlockDevice::Allocate(uint32_t count) {
  if (count == 0) {
    return Status::InvalidArgument("Allocate count must be > 0");
  }
  std::unique_lock<std::shared_mutex> lock(blocks_mu_);
  BlockId first = blocks_.size();
  for (uint32_t i = 0; i < count; ++i) {
    blocks_.emplace_back(block_size(), uint8_t{0});
  }
  return first;
}

Status MemoryBlockDevice::ReadImpl(BlockId id, std::span<uint8_t> out) {
  std::shared_lock<std::shared_mutex> lock(blocks_mu_);
  std::memcpy(out.data(), blocks_[id].data(), block_size());
  return Status::Ok();
}

Status MemoryBlockDevice::WriteImpl(BlockId id,
                                    std::span<const uint8_t> data) {
  // Shared lock: the block directory must not move, but distinct blocks are
  // independent buffers. Same-block write races are the caller's to prevent.
  std::shared_lock<std::shared_mutex> lock(blocks_mu_);
  std::memcpy(blocks_[id].data(), data.data(), block_size());
  return Status::Ok();
}

namespace {

// O_DIRECT requires the user buffer to be aligned to the logical sector
// size; one page covers every real sector size. File offsets here are
// always whole blocks, so only the buffer needs help — unaligned caller
// buffers bounce through this per-thread page-aligned scratch.
constexpr size_t kDirectIoAlignment = 4096;

struct AlignedScratch {
  void* data = nullptr;
  size_t capacity = 0;

  ~AlignedScratch() { std::free(data); }

  uint8_t* Get(size_t size) {
    if (capacity < size) {
      std::free(data);
      data = nullptr;
      capacity = 0;
      void* p = nullptr;
      if (::posix_memalign(&p, kDirectIoAlignment, size) != 0) {
        return nullptr;
      }
      data = p;
      capacity = size;
    }
    return static_cast<uint8_t*>(data);
  }
};

thread_local AlignedScratch t_direct_scratch;

bool IsDirectAligned(const void* p, size_t size) {
  return reinterpret_cast<uintptr_t>(p) % kDirectIoAlignment == 0 &&
         size % kDirectIoAlignment == 0;
}

// Opens with O_DIRECT when requested, falling back to buffered I/O when the
// filesystem refuses (tmpfs returns EINVAL). `direct_out` reports which
// mode actually took.
int OpenWithOptionalDirect(const char* path, int flags, mode_t mode,
                           bool want_direct, bool* direct_out) {
  if (want_direct) {
    int fd = ::open(path, flags | O_DIRECT, mode);
    if (fd >= 0) {
      *direct_out = true;
      return fd;
    }
    if (errno != EINVAL && errno != EOPNOTSUPP) {
      return fd;
    }
    // Fall through: the filesystem cannot do direct I/O here.
  }
  *direct_out = false;
  return ::open(path, flags, mode);
}

}  // namespace

FileBlockDevice::FileBlockDevice(int fd, size_t block_size,
                                 uint64_t num_blocks, bool direct_io)
    : BlockDevice(block_size),
      fd_(fd),
      direct_io_(direct_io),
      num_blocks_(num_blocks) {}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Create(
    const std::string& path, size_t block_size,
    FileBlockDeviceOptions options) {
  // O_DIRECT transfers must be sector-multiples; a sub-page block size
  // cannot honor that, so quietly run it buffered.
  const bool want_direct =
      options.direct_io && block_size % kDirectIoAlignment == 0;
  bool direct = false;
  int fd = OpenWithOptionalDirect(path.c_str(), O_RDWR | O_CREAT | O_TRUNC,
                                  0644, want_direct, &direct);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(fd, block_size, 0, direct));
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, size_t block_size,
    FileBlockDeviceOptions options) {
  const bool want_direct =
      options.direct_io && block_size % kDirectIoAlignment == 0;
  bool direct = false;
  int fd =
      OpenWithOptionalDirect(path.c_str(), O_RDWR, 0644, want_direct, &direct);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek(" + path + "): " + std::strerror(errno));
  }
  if (static_cast<uint64_t>(size) % block_size != 0) {
    ::close(fd);
    return Status::Corruption("File size not a multiple of block size: " +
                              path);
  }
  return std::unique_ptr<FileBlockDevice>(new FileBlockDevice(
      fd, block_size, static_cast<uint64_t>(size) / block_size, direct));
}

uint64_t FileBlockDevice::NumBlocks() const {
  return num_blocks_.load(std::memory_order_acquire);
}

StatusOr<BlockId> FileBlockDevice::Allocate(uint32_t count) {
  if (count == 0) {
    return Status::InvalidArgument("Allocate count must be > 0");
  }
  std::lock_guard<std::mutex> lock(allocate_mu_);
  BlockId first = num_blocks_.load(std::memory_order_relaxed);
  uint64_t new_size = (first + count) * block_size();
  // ftruncate keeps the file size in lockstep with the allocated extent, so
  // a subsequent Open() of the same path derives the identical NumBlocks()
  // and reads of allocated-but-unwritten blocks see zeros (holes).
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Status::IoError(std::string("ftruncate: ") + std::strerror(errno));
  }
  num_blocks_.store(first + count, std::memory_order_release);
  return first;
}

Status FileBlockDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status FileBlockDevice::PreadFull(uint8_t* buf, size_t size, uint64_t offset) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pread(fd_, buf + done, size - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) {
      // A short file is its own condition, not whatever errno was left over
      // from an unrelated call.
      return Status::IoError("pread: unexpected EOF inside allocated extent");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockDevice::PwriteFull(const uint8_t* buf, size_t size,
                                   uint64_t offset) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pwrite(fd_, buf + done, size - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("pwrite: device refused to make progress");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FileBlockDevice::ReadImpl(BlockId id, std::span<uint8_t> out) {
  const uint64_t offset = id * block_size();
  if (direct_io_ && !IsDirectAligned(out.data(), out.size())) {
    uint8_t* bounce = t_direct_scratch.Get(block_size());
    if (bounce == nullptr) {
      return Status::IoError("posix_memalign failed for direct I/O bounce");
    }
    IR2_RETURN_IF_ERROR(PreadFull(bounce, block_size(), offset));
    std::memcpy(out.data(), bounce, block_size());
    return Status::Ok();
  }
  return PreadFull(out.data(), out.size(), offset);
}

Status FileBlockDevice::WriteImpl(BlockId id, std::span<const uint8_t> data) {
  const uint64_t offset = id * block_size();
  if (direct_io_ && !IsDirectAligned(data.data(), data.size())) {
    uint8_t* bounce = t_direct_scratch.Get(block_size());
    if (bounce == nullptr) {
      return Status::IoError("posix_memalign failed for direct I/O bounce");
    }
    std::memcpy(bounce, data.data(), block_size());
    return PwriteFull(bounce, block_size(), offset);
  }
  return PwriteFull(data.data(), data.size(), offset);
}

}  // namespace ir2
