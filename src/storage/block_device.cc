#include "storage/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace ir2 {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "reads(random=" << random_reads << ", seq=" << sequential_reads
     << ") writes(random=" << random_writes << ", seq=" << sequential_writes
     << ")";
  return os.str();
}

Status CopyBlocks(BlockDevice* src, BlockDevice* dst) {
  if (src->block_size() != dst->block_size()) {
    return Status::InvalidArgument("CopyBlocks: block size mismatch");
  }
  if (dst->NumBlocks() != 0) {
    return Status::FailedPrecondition("CopyBlocks: destination not empty");
  }
  const uint64_t blocks = src->NumBlocks();
  if (blocks == 0) {
    return Status::Ok();
  }
  IR2_ASSIGN_OR_RETURN(BlockId first, dst->Allocate(
      static_cast<uint32_t>(blocks)));
  IR2_CHECK_EQ(first, 0u);
  std::vector<uint8_t> buffer(src->block_size());
  for (BlockId id = 0; id < blocks; ++id) {
    IR2_RETURN_IF_ERROR(src->Read(id, buffer));
    IR2_RETURN_IF_ERROR(dst->Write(id, buffer));
  }
  return Status::Ok();
}

Status BlockDevice::Read(BlockId id, std::span<uint8_t> out) {
  if (out.size() != block_size_) {
    return Status::InvalidArgument("Read buffer size != block size");
  }
  if (id >= NumBlocks()) {
    return Status::OutOfRange("Read past end of device");
  }
  if (last_read_block_ != kInvalidBlockId && id == last_read_block_ + 1) {
    ++stats_.sequential_reads;
  } else {
    ++stats_.random_reads;
  }
  last_read_block_ = id;
  return ReadImpl(id, out);
}

Status BlockDevice::Write(BlockId id, std::span<const uint8_t> data) {
  if (data.size() != block_size_) {
    return Status::InvalidArgument("Write buffer size != block size");
  }
  if (id >= NumBlocks()) {
    return Status::OutOfRange("Write past end of device");
  }
  if (last_write_block_ != kInvalidBlockId && id == last_write_block_ + 1) {
    ++stats_.sequential_writes;
  } else {
    ++stats_.random_writes;
  }
  last_write_block_ = id;
  return WriteImpl(id, data);
}

MemoryBlockDevice::MemoryBlockDevice(size_t block_size)
    : BlockDevice(block_size) {}

uint64_t MemoryBlockDevice::NumBlocks() const { return blocks_.size(); }

StatusOr<BlockId> MemoryBlockDevice::Allocate(uint32_t count) {
  if (count == 0) {
    return Status::InvalidArgument("Allocate count must be > 0");
  }
  BlockId first = blocks_.size();
  for (uint32_t i = 0; i < count; ++i) {
    blocks_.emplace_back(block_size(), uint8_t{0});
  }
  return first;
}

Status MemoryBlockDevice::ReadImpl(BlockId id, std::span<uint8_t> out) {
  std::memcpy(out.data(), blocks_[id].data(), block_size());
  return Status::Ok();
}

Status MemoryBlockDevice::WriteImpl(BlockId id,
                                    std::span<const uint8_t> data) {
  std::memcpy(blocks_[id].data(), data.data(), block_size());
  return Status::Ok();
}

FileBlockDevice::FileBlockDevice(int fd, size_t block_size,
                                 uint64_t num_blocks)
    : BlockDevice(block_size), fd_(fd), num_blocks_(num_blocks) {}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Create(
    const std::string& path, size_t block_size) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(fd, block_size, 0));
}

StatusOr<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, size_t block_size) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek(" + path + "): " + std::strerror(errno));
  }
  if (static_cast<uint64_t>(size) % block_size != 0) {
    ::close(fd);
    return Status::Corruption("File size not a multiple of block size: " +
                              path);
  }
  return std::unique_ptr<FileBlockDevice>(new FileBlockDevice(
      fd, block_size, static_cast<uint64_t>(size) / block_size));
}

uint64_t FileBlockDevice::NumBlocks() const { return num_blocks_; }

StatusOr<BlockId> FileBlockDevice::Allocate(uint32_t count) {
  if (count == 0) {
    return Status::InvalidArgument("Allocate count must be > 0");
  }
  BlockId first = num_blocks_;
  uint64_t new_size = (num_blocks_ + count) * block_size();
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Status::IoError(std::string("ftruncate: ") + std::strerror(errno));
  }
  num_blocks_ += count;
  return first;
}

Status FileBlockDevice::ReadImpl(BlockId id, std::span<uint8_t> out) {
  ssize_t n = ::pread(fd_, out.data(), block_size(),
                      static_cast<off_t>(id * block_size()));
  if (n != static_cast<ssize_t>(block_size())) {
    return Status::IoError(std::string("pread: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status FileBlockDevice::WriteImpl(BlockId id, std::span<const uint8_t> data) {
  ssize_t n = ::pwrite(fd_, data.data(), block_size(),
                       static_cast<off_t>(id * block_size()));
  if (n != static_cast<ssize_t>(block_size())) {
    return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace ir2
