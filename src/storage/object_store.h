#ifndef IR2TREE_STORAGE_OBJECT_STORE_H_
#define IR2TREE_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "storage/block_device.h"

namespace ir2 {

// One spatial object as stored in the object file: T = (T.p, T.t) in the
// paper's notation. `coords` is the location descriptor, `text` the textual
// description (e.g. name + amenities for the hotel dataset).
struct StoredObject {
  uint32_t id = 0;
  std::vector<double> coords;
  std::string text;
};

// Byte offset of a record within the object file. Leaf entries of the trees
// store this 4-byte pointer, exactly the paper's setup ("the leaf nodes of
// the tree data structures store pointers to the object locations in the
// file"). 32 bits bound the object file at 4 GiB, ample for the datasets.
using ObjectRef = uint32_t;

inline constexpr ObjectRef kInvalidObjectRef = ~ObjectRef{0};

// Append-only writer producing the paper's "plain text file (tab delimited)
// where each spatial object occupies a row":
//
//   id \t ndims \t c1 \t ... \t cn \t text \n
//
// Tabs/newlines inside `text` are replaced by spaces so the row framing is
// unambiguous.
class ObjectStoreWriter {
 public:
  // `device` must outlive the writer and must be empty (the object file owns
  // the whole device).
  explicit ObjectStoreWriter(BlockDevice* device);

  // Appends one object; returns the ObjectRef to store in index leaves.
  StatusOr<ObjectRef> Append(const StoredObject& object);

  // Flushes the trailing partial block. Must be called before reading.
  Status Finish();

  uint64_t bytes_written() const { return offset_; }
  uint64_t objects_written() const { return count_; }

 private:
  Status FlushBlock();

  BlockDevice* device_;
  std::vector<uint8_t> pending_;  // Current partially filled block.
  uint64_t offset_ = 0;           // Total bytes appended so far.
  uint64_t count_ = 0;
  bool finished_ = false;
};

// Random-access reader over an object file. Loading an object reads every
// block its record spans: one random access for the first block and
// sequential accesses for the rest, which is how the paper's LoadObject
// costs out.
class ObjectStore {
 public:
  // `device` must outlive the store. `size_bytes` is the logical file size
  // (ObjectStoreWriter::bytes_written()).
  ObjectStore(BlockDevice* device, uint64_t size_bytes);

  // Loads the record that starts at `ref`.
  StatusOr<StoredObject> Load(ObjectRef ref) const;

  // Allocation-recycling form of Load for hot verification loops: the
  // record lands in `*object` and `*line_scratch` holds the raw row, both
  // reusing whatever capacity they already carry. Identical device reads
  // (and therefore IoStats) to Load.
  Status LoadInto(ObjectRef ref, StoredObject* object,
                  std::string* line_scratch) const;

  // Sequentially scans every record in file order. Stops early and returns
  // the callback's error if it returns non-OK.
  Status ForEach(
      const std::function<Status(ObjectRef, const StoredObject&)>& fn) const;

  uint64_t size_bytes() const { return size_bytes_; }
  BlockDevice* device() const { return device_; }

 private:
  // Reads the raw record line starting at byte `ref` into `line` (without
  // the trailing newline) and returns the offset one past the newline.
  StatusOr<uint64_t> ReadLine(uint64_t ref, std::string* line) const;

  static Status ParseRecordInto(const std::string& line, StoredObject* object);

  BlockDevice* device_;
  uint64_t size_bytes_;
};

}  // namespace ir2

#endif  // IR2TREE_STORAGE_OBJECT_STORE_H_
