#include "storage/async_io.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ir2 {

AsyncIoBackend::AsyncIoBackend(BufferPool* pool, AsyncIoOptions options)
    : pool_(pool), options_(options) {
  IR2_CHECK(pool != nullptr);
  if (options_.num_threads == 0) {
    options_.num_threads = 1;
  }
  if (options_.queue_depth == 0) {
    options_.queue_depth = 1;
  }
  workers_.reserve(options_.num_threads);
  for (uint32_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncIoBackend::~AsyncIoBackend() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    work_cv_.notify_all();
    submit_cv_.notify_all();
    reap_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void AsyncIoBackend::Submit(const IoRequest& request) {
  std::unique_lock<std::mutex> lock(mu_);
  submit_cv_.wait(lock, [this] {
    return stop_ || in_flight_ < options_.queue_depth;
  });
  if (stop_) {
    return;  // Shutdown races a submit: drop it, nothing is owed a reap.
  }
  submission_queue_.push_back(request);
  ++in_flight_;
  work_cv_.notify_one();
}

bool AsyncIoBackend::TrySubmit(const IoRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ || in_flight_ >= options_.queue_depth) {
    return false;
  }
  submission_queue_.push_back(request);
  ++in_flight_;
  work_cv_.notify_one();
  return true;
}

size_t AsyncIoBackend::Reap(std::vector<IoCompletion>* out,
                            size_t min_completions) {
  size_t reaped = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    while (!completion_queue_.empty()) {
      out->push_back(std::move(completion_queue_.front()));
      completion_queue_.pop_front();
      ++reaped;
    }
    if (reaped >= min_completions || stop_) {
      return reaped;
    }
    reap_cv_.wait(lock, [this] { return stop_ || !completion_queue_.empty(); });
  }
}

size_t AsyncIoBackend::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void AsyncIoBackend::WorkerLoop() {
  // Everything read here was submitted speculatively; classify it so (for
  // pool metrics) and keep its physical I/O on this thread's counters.
  obs::SpeculativeThreadFlag() = true;
  BlockDevice* device = pool_->device();
  std::vector<uint8_t> block(pool_->block_size());
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !submission_queue_.empty(); });
    if (submission_queue_.empty()) {
      return;  // stop_ set and queue drained.
    }
    const IoRequest request = submission_queue_.front();
    submission_queue_.pop_front();
    lock.unlock();

    IoCompletion completion;
    completion.user_data = request.user_data;
    completion.blocks = request.count;
    const IoStats before = device->thread_stats();
    {
      obs::TraceSpan span(obs::SpanKind::kPrefetchComplete, request.first);
      for (uint32_t i = 0; i < request.count; ++i) {
        Status s = pool_->Read(request.first + i, block);
        if (!s.ok()) {
          obs::DefaultMetrics().sched_read_errors->Add();
          if (completion.status.ok()) {
            completion.status = s;
          }
        }
      }
    }
    completion.io = device->thread_stats() - before;

    lock.lock();
    completion_queue_.push_back(std::move(completion));
    // The request's ring slot frees on *completion*, not on reap: a
    // submitter may queue arbitrarily many requests ahead of its reap loop
    // without deadlocking against a full ring (the completion queue absorbs
    // the overflow, like a kernel-grown CQ).
    --in_flight_;
    submit_cv_.notify_one();
    reap_cv_.notify_all();
  }
}

}  // namespace ir2
