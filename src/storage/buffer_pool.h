#ifndef IR2TREE_STORAGE_BUFFER_POOL_H_
#define IR2TREE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "storage/block_device.h"

namespace ir2 {

// Alignment of every cached page frame. Matches the O_DIRECT transfer
// alignment (block_device.cc): a direct-I/O pread can then land in the
// frame itself, instead of bouncing through the per-thread staging buffer
// and paying an extra memcpy per miss. For buffered and memory devices the
// alignment is inert — contents and behaviour are byte-identical.
inline constexpr size_t kPageFrameAlignment = 4096;

// Fixed-size page-aligned byte buffer (the pool's frame storage). Move-only;
// the frame owns its allocation.
class AlignedFrame {
 public:
  AlignedFrame() = default;
  explicit AlignedFrame(size_t size) : size_(size) {
    if (size_ == 0) return;
    void* p = nullptr;
    if (::posix_memalign(&p, kPageFrameAlignment, size_) != 0) p = nullptr;
    data_ = static_cast<uint8_t*>(p);
    IR2_CHECK(data_ != nullptr);
  }
  AlignedFrame(std::span<const uint8_t> contents)
      : AlignedFrame(contents.size()) {
    if (size_ != 0) std::memcpy(data_, contents.data(), size_);
  }
  ~AlignedFrame() { std::free(data_); }

  AlignedFrame(AlignedFrame&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  AlignedFrame& operator=(AlignedFrame&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  AlignedFrame(const AlignedFrame&) = delete;
  AlignedFrame& operator=(const AlignedFrame&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<uint8_t> span() { return {data_, size_}; }
  std::span<const uint8_t> span() const { return {data_, size_}; }

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

// Counter snapshot of a BufferPool. Counters accumulate from construction
// (or the last Clear(), which resets them — a Clear starts a new cold
// measurement epoch, so its counters describe exactly that epoch).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  // Pages pushed out by capacity pressure (dirty victims are written back
  // to the device first; see EvictionWritesDirtyVictims in storage_test).
  uint64_t evictions = 0;

  BufferPoolStats& operator+=(const BufferPoolStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    return *this;
  }

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// Sharded write-back LRU page cache in front of a BlockDevice — itself a
// BlockDevice, so it stacks: readers address the pool exactly like a raw
// device, and the inherited per-thread accounting now exists at *two*
// levels with distinct meanings:
//
//   pool.thread_stats()      logical block requests this thread issued
//                            (demand I/O, independent of cache state and of
//                            any prefetching — what QueryStats.demand_io
//                            reports),
//   device->thread_stats()   physical accesses that actually reached the
//                            backing device (what QueryStats.io reports).
//
// Index structures read and write through the pool; pages cached here do
// not touch the device and therefore do not count as physical disk
// accesses. Query benchmarks call Clear() before each query so every query
// starts cold, the regime the paper measures — in that regime every logical
// request misses, so the two levels agree exactly. Index construction keeps
// the pool warm, which makes building the 100k+ object indexes fast.
//
// Thread-safety: the pool is safe for concurrent use. Pages are partitioned
// into N shards by a hash of their BlockId; each shard has its own mutex,
// LRU list and capacity (capacity_blocks / N), so threads touching different
// shards never contend. Because every access to a given block always lands
// in the same shard, same-block operations are serialized by that shard's
// lock — which also serializes the underlying device accesses for that
// block (an IoScheduler prefetch and a demand read racing for one block
// perform exactly one device read between them). LRU order and eviction are
// per shard.
//
// Pages are copied in and out rather than pinned; for a simulator the copy
// cost is irrelevant and it rules out dangling page pointers by construction.
class BufferPool : public BlockDevice {
 public:
  // `device` must outlive the pool. `capacity_blocks` == 0 disables caching
  // entirely (every access goes to the device). `num_shards` == 0 picks
  // automatically: one shard per 64 blocks of capacity, at most 16 — small
  // pools (including the deterministic single-LRU pools used in tests) stay
  // unsharded, large concurrent pools spread their locks.
  BufferPool(BlockDevice* device, size_t capacity_blocks,
             size_t num_shards = 0);
  ~BufferPool() override;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Allocates contiguous blocks on the underlying device.
  StatusOr<BlockId> Allocate(uint32_t count) override;

  uint64_t NumBlocks() const override { return device_->NumBlocks(); }

  // True when `id` is resident in the cache. Touches no counters and no LRU
  // state — used by IoScheduler to skip prefetching already-cached blocks.
  bool Contains(BlockId id) const;

  // Writes all dirty pages back to the device (ascending block order, so
  // flush I/O is mostly sequential). Takes every shard lock.
  Status FlushAll();

  // Flushes, then drops every cached page and resets the hit/miss/eviction
  // counters: the next access of any block hits the device and Stats()
  // describes only the epoch after the Clear. Use before a measured query
  // to simulate a cold cache. (The inherited per-thread request counters
  // are NOT touched — demand accounting spans epochs like device
  // accounting does.)
  Status Clear();

  // Durability barrier through the pool: flushes every dirty page, then
  // syncs the backing device.
  Status Sync() override {
    Status flushed = FlushAll();
    if (!flushed.ok()) return flushed;
    return device_->Sync();
  }

  // Resets the calling thread's cursor at both levels — the pool's logical
  // cursor and the backing device's physical cursor — so the next access is
  // classified as random end to end, the state a cold query starts from.
  void ResetThreadCursor() override;

  // Zeroes both levels' counters and cursors.
  void ResetStats() override;

  BlockDevice* device() { return device_; }
  size_t num_shards() const { return shards_.size(); }

  // Counter snapshot summed over all shards. Exact when no access is
  // concurrently in flight.
  BufferPoolStats Stats() const;

  uint64_t hits() const { return Stats().hits; }
  uint64_t misses() const { return Stats().misses; }

 protected:
  // Cache lookup/fill behind the inherited accounting wrapper.
  Status ReadImpl(BlockId id, std::span<uint8_t> out) override;
  Status WriteImpl(BlockId id, std::span<const uint8_t> data) override;

 private:
  struct Page {
    BlockId id;
    bool dirty;
    AlignedFrame data;
  };
  using LruList = std::list<Page>;

  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 0;
    LruList lru;  // Front = most recently used.
    std::unordered_map<BlockId, LruList::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardOf(BlockId id);
  const Shard& ShardOf(BlockId id) const;

  // Moves the page to the MRU position and returns it. Caller holds the
  // shard lock.
  static Page& Touch(Shard& shard, LruList::iterator it);
  // Evicts LRU pages until there is room for one more. Caller holds the
  // shard lock.
  Status EvictIfFull(Shard& shard);

  BlockDevice* device_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ir2

#endif  // IR2TREE_STORAGE_BUFFER_POOL_H_
