#ifndef IR2TREE_STORAGE_BUFFER_POOL_H_
#define IR2TREE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/block_device.h"

namespace ir2 {

// Write-back LRU page cache in front of a BlockDevice.
//
// Index structures read and write through the pool; pages cached here do not
// touch the device and therefore do not count as disk accesses. Query
// benchmarks call Clear() before each query so every query starts cold, the
// regime the paper measures. Index construction keeps the pool warm, which
// makes building the 100k+ object indexes fast.
//
// Pages are copied in and out rather than pinned; for a simulator the copy
// cost is irrelevant and it rules out dangling page pointers by construction.
class BufferPool {
 public:
  // `device` must outlive the pool. `capacity_blocks` == 0 disables caching
  // entirely (every access goes to the device).
  BufferPool(BlockDevice* device, size_t capacity_blocks);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Reads one block, from cache if resident.
  Status Read(BlockId id, std::span<uint8_t> out);

  // Writes one block into the cache (write-back). With caching disabled the
  // write goes straight to the device.
  Status Write(BlockId id, std::span<const uint8_t> data);

  // Allocates contiguous blocks on the underlying device.
  StatusOr<BlockId> Allocate(uint32_t count);

  // Writes all dirty pages back to the device.
  Status FlushAll();

  // Flushes, then drops every cached page: the next access of any block hits
  // the device. Use before a measured query to simulate a cold cache.
  Status Clear();

  BlockDevice* device() { return device_; }
  size_t block_size() const { return device_->block_size(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Page {
    BlockId id;
    bool dirty;
    std::vector<uint8_t> data;
  };
  using LruList = std::list<Page>;

  // Moves the page to the MRU position and returns it.
  Page& Touch(LruList::iterator it);
  // Evicts LRU pages until there is room for one more.
  Status EvictIfFull();

  BlockDevice* device_;
  size_t capacity_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<BlockId, LruList::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ir2

#endif  // IR2TREE_STORAGE_BUFFER_POOL_H_
