#ifndef IR2TREE_STORAGE_IO_SCHEDULER_H_
#define IR2TREE_STORAGE_IO_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"

namespace ir2 {

struct IoSchedulerOptions {
  // Longest sequential run one scheduling pass will issue. Caps how long a
  // speculative sweep can hold the (simulated) head before demand traffic
  // gets a turn.
  uint32_t max_run_blocks = 64;

  // Prefetch requests beyond this many distinct pending blocks are dropped
  // (speculation must never become a correctness or memory liability).
  size_t max_pending = 1 << 16;

  // When true, Prefetch()/PrefetchBatch() block until the prefetcher has
  // completed every pending block. The reads still happen on the scheduler
  // thread (so their physical I/O stays attributed to speculation, never to
  // the demand thread) but the interleaving becomes deterministic — the
  // mode the latency benches and invariance tests run in.
  bool synchronous = false;
};

// Scheduler counters (cumulative since construction / last reset).
struct IoSchedulerStats {
  uint64_t requested = 0;  // Blocks passed to Prefetch*.
  uint64_t deduped = 0;    // Dropped: already pending, in flight, or cached.
  uint64_t runs = 0;       // Sequential runs issued to the device.
  uint64_t blocks_fetched = 0;  // Blocks actually read by the prefetcher.
};

// Asynchronous prefetch scheduler over a BufferPool.
//
// Prefetch*() enqueues speculative block reads; a background thread sorts
// the pending set, coalesces adjacent BlockIds into sequential runs (at
// most max_run_blocks long), and reads each run ascending through the pool,
// so a prefetched frontier of tree siblings laid out contiguously on disk
// (see RTreeBase bulk load / CompactInto) costs one random access plus
// sequential transfers instead of one seek per node. Completed blocks sit
// in the pool; the demand read that eventually wants them becomes a pool
// hit and never reaches the device.
//
// Correctness invariants:
//   * Result-invariant: prefetching only moves bytes into the pool earlier;
//     it never changes what any read returns.
//   * Demand accounting is untouched: speculative reads run on the
//     scheduler's own thread, so they land in that thread's device counters
//     (surfaced as speculative_stats() and QueryStats.speculative_io) and
//     can never pollute a query thread's thread_stats() — per-thread
//     sequential cursors make the classification independent too.
//   * Exactly-once physical reads: a demand read racing a prefetch of the
//     same block is serialized by the pool's per-shard lock; whichever
//     loses finds the page resident and stops there. The pending /
//     in-flight sets additionally dedup repeated prefetch requests before
//     they cost anything.
//
// ReadRun() is the *demand*-side sibling: it reads an ascending block run
// through the pool on the calling thread (1 random + (n-1) sequential when
// cold), the streaming path the inverted index uses for posting lists.
//
// The destructor drains the pending queue (so shutdown cannot abandon
// in-flight speculation mid-run) and joins the thread.
class IoScheduler {
 public:
  explicit IoScheduler(BufferPool* pool, IoSchedulerOptions options = {});
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Requests speculative reads of [first, first + count). Clipped to the
  // device size; duplicates of pending/in-flight/cached blocks are dropped.
  void PrefetchRange(BlockId first, uint32_t count);
  void Prefetch(BlockId id) { PrefetchRange(id, 1); }

  // Batch form: one lock acquisition and one scheduling pass for the whole
  // set, so candidates enqueued together coalesce into runs together.
  void PrefetchBatch(std::span<const BlockId> ids);

  // Demand read of the ascending run [first, first + count) into `out`
  // (count * block_size bytes), through the pool, on the calling thread.
  Status ReadRun(BlockId first, uint32_t count, std::span<uint8_t> out);
  Status ReadRun(BlockId first, uint32_t count, std::vector<uint8_t>* out);

  // Blocks until no prefetch is pending or in flight.
  void Drain();

  // Physical device I/O performed by the prefetch thread (diffed around
  // each scheduling pass, so it is exact once Drain() has returned).
  IoStats speculative_stats() const;
  IoSchedulerStats stats() const;
  void ResetStats();

  // First error any speculative read hit (speculation never fails a query;
  // errors are recorded here for tests/diagnostics).
  Status last_error() const;

  // Attaches a submission/completion backend (must wrap the same pool and
  // outlive this scheduler): each scheduling pass submits its coalesced
  // runs as async requests and reaps their completions, overlapping run
  // reads across the backend's workers — the real-file fan-out path. Null
  // (the default) keeps the single-worker inline reads, whose interleaving
  // the deterministic tests and goldens pin. Call before any Prefetch
  // traffic; dedup, accounting, and Drain semantics are identical either
  // way.
  void SetAsyncBackend(AsyncIoBackend* backend) { backend_ = backend; }
  AsyncIoBackend* async_backend() const { return backend_; }

  BufferPool* pool() const { return pool_; }

 private:
  void WorkerLoop();
  // Caller holds mu_. Starts the worker on first use.
  void EnsureWorkerLocked();
  // Caller holds mu_ with work pending; wakes the worker and, in
  // synchronous mode, waits for it to finish everything.
  void KickLocked(std::unique_lock<std::mutex>& lock);

  BufferPool* pool_;
  IoSchedulerOptions options_;
  AsyncIoBackend* backend_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Worker waits for pending/stop.
  std::condition_variable idle_cv_;   // Drain() waits for quiescence.
  std::set<BlockId> pending_;         // Sorted: coalescing falls out.
  std::set<BlockId> in_flight_;       // Batch currently being read.
  bool stop_ = false;
  bool worker_started_ = false;
  std::thread worker_;
  IoStats speculative_;
  IoSchedulerStats counters_;
  Status last_error_ = Status::Ok();
};

}  // namespace ir2

#endif  // IR2TREE_STORAGE_IO_SCHEDULER_H_
