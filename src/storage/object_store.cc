#include "storage/object_store.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <span>

#include "common/logging.h"

namespace ir2 {
namespace {

void AppendSanitized(const std::string& text, std::string* out) {
  for (char c : text) {
    out->push_back((c == '\t' || c == '\n' || c == '\r') ? ' ' : c);
  }
}

void AppendDouble(double v, std::string* out) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf, static_cast<size_t>(n));
}

}  // namespace

ObjectStoreWriter::ObjectStoreWriter(BlockDevice* device) : device_(device) {
  IR2_CHECK(device != nullptr);
  IR2_CHECK_EQ(device->NumBlocks(), 0u);
  pending_.reserve(device->block_size());
}

StatusOr<ObjectRef> ObjectStoreWriter::Append(const StoredObject& object) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish");
  }
  std::string row;
  row.reserve(object.text.size() + 64);
  row += std::to_string(object.id);
  row += '\t';
  row += std::to_string(object.coords.size());
  for (double c : object.coords) {
    row += '\t';
    AppendDouble(c, &row);
  }
  row += '\t';
  AppendSanitized(object.text, &row);
  row += '\n';

  uint64_t ref = offset_;
  if (ref > kInvalidObjectRef - row.size()) {
    return Status::ResourceExhausted("Object file exceeds 4 GiB");
  }
  const size_t block_size = device_->block_size();
  for (char c : row) {
    pending_.push_back(static_cast<uint8_t>(c));
    if (pending_.size() == block_size) {
      IR2_RETURN_IF_ERROR(FlushBlock());
    }
  }
  offset_ += row.size();
  ++count_;
  return static_cast<ObjectRef>(ref);
}

Status ObjectStoreWriter::FlushBlock() {
  pending_.resize(device_->block_size(), 0);
  IR2_ASSIGN_OR_RETURN(BlockId id, device_->Allocate(1));
  IR2_RETURN_IF_ERROR(device_->Write(id, pending_));
  pending_.clear();
  return Status::Ok();
}

Status ObjectStoreWriter::Finish() {
  if (finished_) {
    return Status::Ok();
  }
  if (!pending_.empty()) {
    IR2_RETURN_IF_ERROR(FlushBlock());
  }
  finished_ = true;
  return Status::Ok();
}

ObjectStore::ObjectStore(BlockDevice* device, uint64_t size_bytes)
    : device_(device), size_bytes_(size_bytes) {
  IR2_CHECK(device != nullptr);
}

StatusOr<uint64_t> ObjectStore::ReadLine(uint64_t ref,
                                         std::string* line) const {
  if (ref >= size_bytes_) {
    return Status::OutOfRange("Object ref past end of file");
  }
  const size_t block_size = device_->block_size();
  // Load paths run once per candidate object, so the block staging buffer
  // lives on the stack for the standard 4096-byte block (heap only for
  // oversized configurations). Device reads are unchanged: one Read per
  // spanned block, in ascending order.
  constexpr size_t kInlineBlock = 4096;
  uint8_t inline_buf[kInlineBlock];
  std::vector<uint8_t> heap_buf;
  std::span<uint8_t> block;
  if (block_size <= kInlineBlock) {
    block = std::span<uint8_t>(inline_buf, block_size);
  } else {
    heap_buf.resize(block_size);
    block = heap_buf;
  }
  uint64_t block_id = ref / block_size;
  size_t in_block = static_cast<size_t>(ref % block_size);
  line->clear();
  while (true) {
    IR2_RETURN_IF_ERROR(device_->Read(block_id, block));
    size_t limit = block_size;
    uint64_t block_end = (block_id + 1) * block_size;
    if (block_end > size_bytes_) {
      limit = static_cast<size_t>(size_bytes_ - block_id * block_size);
    }
    const char* data = reinterpret_cast<const char*>(block.data());
    const void* newline =
        std::memchr(data + in_block, '\n', limit - in_block);
    if (newline != nullptr) {
      const size_t i =
          static_cast<size_t>(static_cast<const char*>(newline) - data);
      line->append(data + in_block, i - in_block);
      return block_id * block_size + i + 1;
    }
    line->append(data + in_block, limit - in_block);
    ++block_id;
    in_block = 0;
    if (block_id * block_size >= size_bytes_) {
      return Status::Corruption("Unterminated object record");
    }
  }
}

Status ObjectStore::ParseRecordInto(const std::string& line,
                                    StoredObject* out) {
  StoredObject& object = *out;
  object.coords.clear();
  const char* p = line.data();
  const char* end = p + line.size();

  auto next_field = [&]() -> std::string_view {
    const char* start = p;
    while (p < end && *p != '\t') ++p;
    std::string_view field(start, static_cast<size_t>(p - start));
    if (p < end) ++p;  // Skip tab.
    return field;
  };

  std::string_view id_field = next_field();
  auto [id_end, id_err] =
      std::from_chars(id_field.begin(), id_field.end(), object.id);
  if (id_err != std::errc() || id_end != id_field.end()) {
    return Status::Corruption("Bad object id field");
  }

  std::string_view ndims_field = next_field();
  uint32_t ndims = 0;
  auto [nd_end, nd_err] =
      std::from_chars(ndims_field.begin(), ndims_field.end(), ndims);
  if (nd_err != std::errc() || nd_end != ndims_field.end() || ndims == 0 ||
      ndims > 16) {
    return Status::Corruption("Bad object dimension field");
  }

  object.coords.reserve(ndims);
  for (uint32_t d = 0; d < ndims; ++d) {
    std::string_view coord = next_field();
    // std::from_chars<double> needs a NUL-free contiguous range; coords are
    // short, so copy into a small buffer for strtod.
    char buf[40];
    if (coord.empty() || coord.size() >= sizeof(buf)) {
      return Status::Corruption("Bad coordinate field");
    }
    std::memcpy(buf, coord.data(), coord.size());
    buf[coord.size()] = '\0';
    char* conv_end = nullptr;
    double value = std::strtod(buf, &conv_end);
    if (conv_end != buf + coord.size()) {
      return Status::Corruption("Bad coordinate field");
    }
    object.coords.push_back(value);
  }

  object.text.assign(p, static_cast<size_t>(end - p));
  return Status::Ok();
}

StatusOr<StoredObject> ObjectStore::Load(ObjectRef ref) const {
  StoredObject object;
  std::string line;
  IR2_RETURN_IF_ERROR(LoadInto(ref, &object, &line));
  return object;
}

Status ObjectStore::LoadInto(ObjectRef ref, StoredObject* object,
                             std::string* line_scratch) const {
  IR2_ASSIGN_OR_RETURN(uint64_t next, ReadLine(ref, line_scratch));
  (void)next;
  return ParseRecordInto(*line_scratch, object);
}

Status ObjectStore::ForEach(
    const std::function<Status(ObjectRef, const StoredObject&)>& fn) const {
  uint64_t offset = 0;
  std::string line;
  StoredObject object;
  while (offset < size_bytes_) {
    IR2_ASSIGN_OR_RETURN(uint64_t next, ReadLine(offset, &line));
    if (line.empty() && next >= size_bytes_) {
      break;  // Trailing padding in the final block.
    }
    IR2_RETURN_IF_ERROR(ParseRecordInto(line, &object));
    IR2_RETURN_IF_ERROR(fn(static_cast<ObjectRef>(offset), object));
    offset = next;
  }
  return Status::Ok();
}

}  // namespace ir2
