#ifndef IR2TREE_STORAGE_DISK_MODEL_H_
#define IR2TREE_STORAGE_DISK_MODEL_H_

#include <cstddef>
#include <string>

#include "storage/block_device.h"

namespace ir2 {

// Parameters of the disk-time cost model. The defaults describe the class
// of drive the paper ran on — a 74 GB 10,000-RPM SCSI disk: ~4.7 ms average
// seek, 3 ms average rotational latency (half a revolution at 10k RPM), and
// a sustained transfer rate in the low-70 MB/s range.
struct DiskModelParams {
  double seek_ms = 4.7;
  double rotational_latency_ms = 3.0;
  double transfer_mb_per_s = 72.0;
};

// A modern NVMe SSD: no mechanical positioning, ~20 µs random-read latency
// modeled as "seek", multi-GB/s sustained transfer. Under this preset a
// random access costs barely more than a sequential one, which inverts
// several of the planner's trade-offs (sequential sweeps and coalesced
// prefetch runs lose most of their edge over seeks) — bench_planner has an
// NVMe section exercising exactly that.
inline DiskModelParams NvmeDiskModelParams() {
  DiskModelParams params;
  params.seek_ms = 0.02;
  params.rotational_latency_ms = 0.0;
  params.transfer_mb_per_s = 3000.0;
  return params;
}

// Converts the random/sequential access counters every BlockDevice keeps
// into simulated elapsed disk time:
//
//   random access      = seek + rotational latency + one block transfer
//   sequential access  = one block transfer (the head is already there)
//
// This is the translation layer between the counts the simulator measures
// and the query *times* the paper's figures report. Because it is a pure
// function of an IoStats snapshot, any counter the library exposes (device
// stats, per-thread stats, QueryStats.io / .speculative_io) can be priced
// after the fact, with any drive parameters.
class DiskModel {
 public:
  explicit DiskModel(DiskModelParams params = {},
                     size_t block_size = kDefaultBlockSize)
      : params_(params), block_size_(block_size) {}

  double TransferMsPerBlock() const {
    return static_cast<double>(block_size_) /
           (params_.transfer_mb_per_s * 1e6) * 1e3;
  }
  double RandomAccessMs() const {
    return params_.seek_ms + params_.rotational_latency_ms +
           TransferMsPerBlock();
  }
  double SequentialAccessMs() const { return TransferMsPerBlock(); }

  // Simulated elapsed time of `io`, reads and writes priced alike (writes
  // pay the same positioning cost).
  double Ms(const IoStats& io) const {
    return static_cast<double>(io.random_reads + io.random_writes) *
               RandomAccessMs() +
           static_cast<double>(io.sequential_reads + io.sequential_writes) *
               SequentialAccessMs();
  }

  const DiskModelParams& params() const { return params_; }
  size_t block_size() const { return block_size_; }

  std::string ToString() const;

 private:
  DiskModelParams params_;
  size_t block_size_;
};

}  // namespace ir2

#endif  // IR2TREE_STORAGE_DISK_MODEL_H_
