#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ir2 {

namespace {

// One shard per this many blocks of capacity when auto-sharding, so small
// deterministic pools stay a single LRU.
constexpr size_t kBlocksPerAutoShard = 64;
constexpr size_t kMaxAutoShards = 16;

size_t PickShardCount(size_t capacity_blocks, size_t requested) {
  if (capacity_blocks == 0) {
    return 0;  // Bypass mode keeps no shards at all.
  }
  size_t shards = requested;
  if (shards == 0) {
    shards = std::min(kMaxAutoShards, capacity_blocks / kBlocksPerAutoShard);
  }
  shards = std::max<size_t>(1, std::min(shards, capacity_blocks));
  return shards;
}

}  // namespace

BufferPool::BufferPool(BlockDevice* device, size_t capacity_blocks,
                       size_t num_shards)
    : BlockDevice(device->block_size()),
      device_(device),
      capacity_(capacity_blocks) {
  IR2_CHECK(device != nullptr);
  const size_t shards = PickShardCount(capacity_blocks, num_shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // Distribute the capacity evenly, earlier shards taking the remainder.
    shard->capacity = capacity_blocks / shards + (i < capacity_blocks % shards);
    shards_.push_back(std::move(shard));
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; callers that care about the status flush explicitly.
  Status s = FlushAll();
  (void)s;
}

BufferPool::Shard& BufferPool::ShardOf(BlockId id) {
  if (shards_.size() == 1) {
    return *shards_[0];
  }
  // Mix the id so contiguous block ranges (tree nodes span adjacent blocks)
  // spread across shards instead of marching through one.
  return *shards_[Mix64(id) % shards_.size()];
}

const BufferPool::Shard& BufferPool::ShardOf(BlockId id) const {
  return const_cast<BufferPool*>(this)->ShardOf(id);
}

BufferPool::Page& BufferPool::Touch(Shard& shard, LruList::iterator it) {
  shard.lru.splice(shard.lru.begin(), shard.lru, it);
  return shard.lru.front();
}

Status BufferPool::EvictIfFull(Shard& shard) {
  while (shard.lru.size() >= shard.capacity && !shard.lru.empty()) {
    Page& victim = shard.lru.back();
    if (victim.dirty) {
      IR2_RETURN_IF_ERROR(device_->Write(victim.id, victim.data.span()));
    }
    shard.index.erase(victim.id);
    shard.lru.pop_back();
    ++shard.evictions;
    obs::DefaultMetrics().pool_evictions->Add();
  }
  return Status::Ok();
}

bool BufferPool::Contains(BlockId id) const {
  if (capacity_ == 0) {
    return false;
  }
  const Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.find(id) != shard.index.end();
}

Status BufferPool::ReadImpl(BlockId id, std::span<uint8_t> out) {
  if (capacity_ == 0) {
    // Bypass mode still waits on the device; trace it like a miss but
    // leave the hit/miss metrics alone (Stats() does not count bypass).
    obs::TraceSpan span(obs::SpanKind::kDemandIoWait, id,
                        !obs::SpeculativeThreadFlag());
    return device_->Read(id, out);
  }
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    ++shard.hits;
    obs::DefaultMetrics().pool_hits->Add();
    Page& page = Touch(shard, it->second);
    std::memcpy(out.data(), page.data.data(), block_size());
    return Status::Ok();
  }
  ++shard.misses;
  obs::DefaultMetrics().pool_misses->Add();
  // Read into the (4096-aligned) frame first, then copy out to the caller:
  // a direct-I/O device then DMAs straight into the cached frame and the
  // per-thread staging bounce never runs.
  AlignedFrame frame(out.size());
  {
    obs::TraceSpan span(obs::SpanKind::kDemandIoWait, id,
                        !obs::SpeculativeThreadFlag());
    IR2_RETURN_IF_ERROR(device_->Read(id, frame.span()));
  }
  std::memcpy(out.data(), frame.data(), block_size());
  IR2_RETURN_IF_ERROR(EvictIfFull(shard));
  shard.lru.push_front(Page{id, /*dirty=*/false, std::move(frame)});
  shard.index[id] = shard.lru.begin();
  return Status::Ok();
}

Status BufferPool::WriteImpl(BlockId id, std::span<const uint8_t> data) {
  if (capacity_ == 0) {
    return device_->Write(id, data);
  }
  Shard& shard = ShardOf(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    Page& page = Touch(shard, it->second);
    std::memcpy(page.data.data(), data.data(), block_size());
    page.dirty = true;
    return Status::Ok();
  }
  IR2_RETURN_IF_ERROR(EvictIfFull(shard));
  shard.lru.push_front(Page{id, /*dirty=*/true, AlignedFrame(data)});
  shard.index[id] = shard.lru.begin();
  return Status::Ok();
}

StatusOr<BlockId> BufferPool::Allocate(uint32_t count) {
  return device_->Allocate(count);
}

Status BufferPool::FlushAll() {
  // Hold every shard lock (always acquired in index order, so concurrent
  // FlushAll/Clear cannot deadlock) and flush in ascending block order so
  // flush I/O is mostly sequential, as a real write-back cache would
  // schedule it.
  for (auto& shard : shards_) shard->mu.lock();
  std::vector<Page*> dirty;
  for (auto& shard : shards_) {
    for (Page& page : shard->lru) {
      if (page.dirty) dirty.push_back(&page);
    }
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const Page* a, const Page* b) { return a->id < b->id; });
  Status status = Status::Ok();
  for (Page* page : dirty) {
    status = device_->Write(page->id, page->data.span());
    if (!status.ok()) break;
    page->dirty = false;
  }
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    (*it)->mu.unlock();
  }
  return status;
}

Status BufferPool::Clear() {
  IR2_RETURN_IF_ERROR(FlushAll());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->hits = 0;
    shard->misses = 0;
    shard->evictions = 0;
  }
  return Status::Ok();
}

void BufferPool::ResetThreadCursor() {
  BlockDevice::ResetThreadCursor();
  device_->ResetThreadCursor();
}

void BufferPool::ResetStats() {
  BlockDevice::ResetStats();
  device_->ResetStats();
}

BufferPoolStats BufferPool::Stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.evictions += shard->evictions;
  }
  return total;
}

}  // namespace ir2
