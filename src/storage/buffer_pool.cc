#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace ir2 {

BufferPool::BufferPool(BlockDevice* device, size_t capacity_blocks)
    : device_(device), capacity_(capacity_blocks) {
  IR2_CHECK(device != nullptr);
}

BufferPool::~BufferPool() {
  // Best-effort flush; callers that care about the status flush explicitly.
  Status s = FlushAll();
  (void)s;
}

BufferPool::Page& BufferPool::Touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
  return lru_.front();
}

Status BufferPool::EvictIfFull() {
  while (lru_.size() >= capacity_ && !lru_.empty()) {
    Page& victim = lru_.back();
    if (victim.dirty) {
      IR2_RETURN_IF_ERROR(device_->Write(victim.id, victim.data));
    }
    index_.erase(victim.id);
    lru_.pop_back();
  }
  return Status::Ok();
}

Status BufferPool::Read(BlockId id, std::span<uint8_t> out) {
  if (out.size() != block_size()) {
    return Status::InvalidArgument("Read buffer size != block size");
  }
  if (capacity_ == 0) {
    return device_->Read(id, out);
  }
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++hits_;
    Page& page = Touch(it->second);
    std::memcpy(out.data(), page.data.data(), block_size());
    return Status::Ok();
  }
  ++misses_;
  IR2_RETURN_IF_ERROR(device_->Read(id, out));
  IR2_RETURN_IF_ERROR(EvictIfFull());
  lru_.push_front(
      Page{id, /*dirty=*/false,
           std::vector<uint8_t>(out.begin(), out.end())});
  index_[id] = lru_.begin();
  return Status::Ok();
}

Status BufferPool::Write(BlockId id, std::span<const uint8_t> data) {
  if (data.size() != block_size()) {
    return Status::InvalidArgument("Write buffer size != block size");
  }
  if (capacity_ == 0) {
    return device_->Write(id, data);
  }
  auto it = index_.find(id);
  if (it != index_.end()) {
    Page& page = Touch(it->second);
    std::memcpy(page.data.data(), data.data(), block_size());
    page.dirty = true;
    return Status::Ok();
  }
  IR2_RETURN_IF_ERROR(EvictIfFull());
  lru_.push_front(
      Page{id, /*dirty=*/true, std::vector<uint8_t>(data.begin(), data.end())});
  index_[id] = lru_.begin();
  return Status::Ok();
}

StatusOr<BlockId> BufferPool::Allocate(uint32_t count) {
  return device_->Allocate(count);
}

Status BufferPool::FlushAll() {
  // Flush in ascending block order so flush I/O is mostly sequential, as a
  // real write-back cache would schedule it.
  std::vector<Page*> dirty;
  for (Page& page : lru_) {
    if (page.dirty) dirty.push_back(&page);
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const Page* a, const Page* b) { return a->id < b->id; });
  for (Page* page : dirty) {
    IR2_RETURN_IF_ERROR(device_->Write(page->id, page->data));
    page->dirty = false;
  }
  return Status::Ok();
}

Status BufferPool::Clear() {
  IR2_RETURN_IF_ERROR(FlushAll());
  lru_.clear();
  index_.clear();
  return Status::Ok();
}

}  // namespace ir2
