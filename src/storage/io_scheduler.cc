#include "storage/io_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ir2 {

IoScheduler::IoScheduler(BufferPool* pool, IoSchedulerOptions options)
    : pool_(pool), options_(options) {
  IR2_CHECK(pool != nullptr);
  if (options_.max_run_blocks == 0) {
    options_.max_run_blocks = 1;
  }
}

IoScheduler::~IoScheduler() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
    work_cv_.notify_all();
  }
  if (worker_.joinable()) {
    worker_.join();
  }
}

void IoScheduler::EnsureWorkerLocked() {
  if (!worker_started_) {
    worker_started_ = true;
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

void IoScheduler::KickLocked(std::unique_lock<std::mutex>& lock) {
  EnsureWorkerLocked();
  work_cv_.notify_one();
  if (options_.synchronous) {
    idle_cv_.wait(lock,
                  [this] { return pending_.empty() && in_flight_.empty(); });
  }
}

void IoScheduler::PrefetchRange(BlockId first, uint32_t count) {
  if (count == 0) {
    return;
  }
  const uint64_t num_blocks = pool_->NumBlocks();
  if (first >= num_blocks) {
    return;
  }
  const BlockId end = std::min<uint64_t>(first + count, num_blocks);
  std::unique_lock<std::mutex> lock(mu_);
  bool added = false;
  for (BlockId id = first; id < end; ++id) {
    ++counters_.requested;
    if (pending_.size() >= options_.max_pending ||
        pending_.count(id) != 0 || in_flight_.count(id) != 0 ||
        pool_->Contains(id)) {
      ++counters_.deduped;
      continue;
    }
    pending_.insert(id);
    added = true;
  }
  if (added) {
    KickLocked(lock);
  }
}

void IoScheduler::PrefetchBatch(std::span<const BlockId> ids) {
  if (ids.empty()) {
    return;
  }
  const uint64_t num_blocks = pool_->NumBlocks();
  std::unique_lock<std::mutex> lock(mu_);
  bool added = false;
  for (BlockId id : ids) {
    ++counters_.requested;
    if (id >= num_blocks || pending_.size() >= options_.max_pending ||
        pending_.count(id) != 0 || in_flight_.count(id) != 0 ||
        pool_->Contains(id)) {
      ++counters_.deduped;
      continue;
    }
    pending_.insert(id);
    added = true;
  }
  if (added) {
    KickLocked(lock);
  }
}

Status IoScheduler::ReadRun(BlockId first, uint32_t count,
                            std::span<uint8_t> out) {
  const size_t block_size = pool_->block_size();
  if (out.size() != static_cast<size_t>(count) * block_size) {
    return Status::InvalidArgument("ReadRun buffer size mismatch");
  }
  for (uint32_t i = 0; i < count; ++i) {
    IR2_RETURN_IF_ERROR(pool_->Read(
        first + i, out.subspan(static_cast<size_t>(i) * block_size,
                               block_size)));
  }
  return Status::Ok();
}

Status IoScheduler::ReadRun(BlockId first, uint32_t count,
                            std::vector<uint8_t>* out) {
  out->resize(static_cast<size_t>(count) * pool_->block_size());
  return ReadRun(first, count, std::span<uint8_t>(*out));
}

void IoScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return pending_.empty() && in_flight_.empty(); });
}

IoStats IoScheduler::speculative_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return speculative_;
}

IoSchedulerStats IoScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void IoScheduler::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  speculative_ = IoStats{};
  counters_ = IoSchedulerStats{};
}

Status IoScheduler::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void IoScheduler::WorkerLoop() {
  obs::SpeculativeThreadFlag() = true;
  BlockDevice* device = pool_->device();
  std::vector<uint8_t> block(pool_->block_size());
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      // stop_ set and queue drained: shutdown complete.
      return;
    }
    // Claim the whole pending set. Keeping it visible as in_flight_ lets
    // Prefetch* dedup against blocks this pass is about to read.
    in_flight_.swap(pending_);
    // Copy out the sorted ids so the reads can run unlocked.
    std::vector<BlockId> ids(in_flight_.begin(), in_flight_.end());
    lock.unlock();

    IoStats pass_io;
    uint64_t runs = 0;
    Status error = Status::Ok();
    if (backend_ != nullptr) {
      // Submission/completion path: hand each coalesced run to the async
      // backend and reap. The backend's workers read through the same pool
      // (exactly-once against racing demand traffic) and each completion
      // carries the physical I/O its run performed on its worker thread.
      size_t i = 0;
      while (i < ids.size()) {
        size_t j = i + 1;
        while (j < ids.size() && ids[j] == ids[j - 1] + 1 &&
               j - i < options_.max_run_blocks) {
          ++j;
        }
        backend_->Submit(IoRequest{ids[i], static_cast<uint32_t>(j - i),
                                   /*user_data=*/runs});
        ++runs;
        i = j;
      }
      std::vector<IoCompletion> completions;
      completions.reserve(runs);
      while (completions.size() < runs) {
        backend_->Reap(&completions,
                       /*min_completions=*/runs - completions.size());
      }
      for (const IoCompletion& completion : completions) {
        pass_io += completion.io;
        if (!completion.status.ok()) {
          if (error.ok()) {
            error = completion.status;
          }
        }
      }
    } else {
      const IoStats before = device->thread_stats();
      size_t i = 0;
      while (i < ids.size()) {
        // Greedy coalescing: the longest adjacent ascending run from
        // ids[i], capped at max_run_blocks.
        size_t j = i + 1;
        while (j < ids.size() && ids[j] == ids[j - 1] + 1 &&
               j - i < options_.max_run_blocks) {
          ++j;
        }
        ++runs;
        {
          obs::TraceSpan span(obs::SpanKind::kPrefetchComplete, ids[i]);
          for (size_t at = i; at < j; ++at) {
            Status s = pool_->Read(ids[at], block);
            if (!s.ok()) {
              obs::DefaultMetrics().sched_read_errors->Add();
              if (error.ok()) {
                error = s;
              }
            }
          }
        }
        i = j;
      }
      pass_io = device->thread_stats() - before;
    }
    obs::DefaultMetrics().sched_runs->Add(runs);
    obs::DefaultMetrics().sched_blocks_fetched->Add(ids.size());
    if (!error.ok()) {
      // Speculation failing is not a query error (demand reads will retry
      // and surface their own Status), but it should never be silent.
      IR2_LOG(ERROR) << "IoScheduler worker: prefetch read failed: "
                     << error.ToString();
    }

    lock.lock();
    speculative_ += pass_io;
    counters_.runs += runs;
    counters_.blocks_fetched += ids.size();
    if (!error.ok() && last_error_.ok()) {
      last_error_ = error;
    }
    in_flight_.clear();
    idle_cv_.notify_all();
  }
}

}  // namespace ir2
