#ifndef IR2TREE_STORAGE_ASYNC_IO_H_
#define IR2TREE_STORAGE_ASYNC_IO_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace ir2 {

struct AsyncIoOptions {
  // Worker threads servicing the submission queue. Each one reads whole
  // runs, so two workers already overlap a sequential transfer with the
  // next seek — the useful parallelism of one spindle / a few NVMe queues.
  uint32_t num_threads = 2;

  // Maximum outstanding (submitted, not yet completed) requests; Submit
  // blocks while the ring is full, TrySubmit refuses. Bounds submission
  // backlog the way an io_uring's sqe ring would; completions wait in the
  // CQ until reaped, so a submitter may queue a whole pass ahead of its
  // reap loop without deadlocking.
  size_t queue_depth = 128;
};

// One submission: read the ascending block run [first, first + count)
// through the pool. `user_data` is an opaque cookie echoed verbatim in the
// matching completion, never interpreted.
struct IoRequest {
  BlockId first = 0;
  uint32_t count = 1;
  uint64_t user_data = 0;
};

// One completion. `io` is the *physical* device I/O this request performed
// (diffed around the run on the worker thread) — blocks already resident in
// the pool cost nothing and the run's profile shows exactly the 1-random +
// (n-1)-sequential shape the coalescing earned.
struct IoCompletion {
  uint64_t user_data = 0;
  Status status;
  IoStats io;
  uint32_t blocks = 0;  // Blocks processed (equals the request's count).
};

// Submission/completion asynchronous read engine over a BufferPool —
// io_uring-shaped (bounded SQ/CQ rings, opaque user_data, reap-style
// harvesting) but thread-pool backed: the workers issue ordinary
// pool->Read calls, so every byte lands in the shared pool under its
// per-shard lock (exactly-once physical reads even against racing demand
// traffic) and every read is classified by the device's per-thread
// sequential cursors exactly like any other I/O. DESIGN.md decision 9
// records why this interface is the io_uring *shape* without the syscall
// dependency.
//
// Worker threads run with obs::SpeculativeThreadFlag() set: traffic issued
// here is speculative by construction (IoScheduler is the producer), and
// pool-level metrics classify it as such. Physical I/O lands in the worker
// threads' device counters, never a query thread's — the accounting
// invariant the cold-regime golden tests pin.
//
// The destructor drains the submission queue (abandoning nothing mid-run)
// and joins the workers; unreaped completions are discarded.
class AsyncIoBackend {
 public:
  explicit AsyncIoBackend(BufferPool* pool, AsyncIoOptions options = {});
  ~AsyncIoBackend();

  AsyncIoBackend(const AsyncIoBackend&) = delete;
  AsyncIoBackend& operator=(const AsyncIoBackend&) = delete;

  // Enqueues `request`; blocks while the ring is full.
  void Submit(const IoRequest& request);

  // Non-blocking form: false (and no effect) when the ring is full.
  bool TrySubmit(const IoRequest& request);

  // Harvests completions into `out` (appended). Blocks until at least
  // `min_completions` have been appended (0 = never block). Returns the
  // number appended.
  size_t Reap(std::vector<IoCompletion>* out, size_t min_completions = 0);

  // Submitted requests not yet completed (their completions may still be
  // waiting in the CQ for a Reap).
  size_t InFlight() const;

  BufferPool* pool() const { return pool_; }
  const AsyncIoOptions& options() const { return options_; }

 private:
  void WorkerLoop();

  BufferPool* pool_;
  AsyncIoOptions options_;

  mutable std::mutex mu_;
  std::condition_variable submit_cv_;  // Submit waits for ring space.
  std::condition_variable work_cv_;    // Workers wait for submissions.
  std::condition_variable reap_cv_;    // Reap waits for completions.
  std::deque<IoRequest> submission_queue_;
  std::deque<IoCompletion> completion_queue_;
  size_t in_flight_ = 0;  // Submitted, not yet completed.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ir2

#endif  // IR2TREE_STORAGE_ASYNC_IO_H_
