#include "storage/disk_model.h"

#include <sstream>

namespace ir2 {

std::string DiskModel::ToString() const {
  std::ostringstream os;
  os << "disk(seek=" << params_.seek_ms
     << "ms, rot=" << params_.rotational_latency_ms
     << "ms, xfer=" << params_.transfer_mb_per_s
     << "MB/s, block=" << block_size_ << "B => random="
     << RandomAccessMs() << "ms, sequential=" << SequentialAccessMs()
     << "ms)";
  return os.str();
}

}  // namespace ir2
