#include "obs/windowed.h"

#include <algorithm>
#include <cmath>

namespace ir2 {
namespace obs {

WindowedHistogram::WindowedHistogram(Options options) : options_(options) {
  if (options_.slots < 1) options_.slots = 1;
  if (!(options_.slot_seconds > 0.0)) options_.slot_seconds = 1.0;
  epoch_ = std::chrono::steady_clock::now();
  slots_.resize(static_cast<size_t>(options_.slots));
  for (Slot& slot : slots_) {
    slot.buckets.assign(Histogram::kNumBuckets, 0);
  }
}

double WindowedHistogram::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void WindowedHistogram::RecordAt(double now_seconds, double value) {
  if (now_seconds < 0.0) now_seconds = 0.0;
  const int64_t epoch =
      static_cast<int64_t>(std::floor(now_seconds / options_.slot_seconds));
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[static_cast<size_t>(epoch % options_.slots)];
  if (slot.epoch != epoch) {
    // The ring wrapped past this slot's old interval: it aged out of the
    // window the moment `epoch` started, so recycle it in place.
    slot.epoch = epoch;
    slot.count = 0;
    slot.sum = 0.0;
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
  }
  ++slot.count;
  slot.sum += value;
  ++slot.buckets[static_cast<size_t>(Histogram::BucketFor(value))];
}

WindowedHistogram::Snapshot WindowedHistogram::SnapAt(
    double now_seconds) const {
  if (now_seconds < 0.0) now_seconds = 0.0;
  const int64_t current =
      static_cast<int64_t>(std::floor(now_seconds / options_.slot_seconds));
  Snapshot snap;
  snap.window_seconds = window_seconds();
  std::vector<uint64_t> merged(Histogram::kNumBuckets, 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot& slot : slots_) {
      // Live = written during one of the window's `slots` most recent
      // intervals, the current (partial) one included.
      if (slot.epoch < 0 || slot.epoch + options_.slots <= current) continue;
      snap.count += slot.count;
      snap.sum += slot.sum;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        merged[static_cast<size_t>(i)] += slot.buckets[static_cast<size_t>(i)];
      }
    }
  }
  snap.p50 = Histogram::PercentileFromBuckets(merged, 0.50);
  snap.p95 = Histogram::PercentileFromBuckets(merged, 0.95);
  snap.p99 = Histogram::PercentileFromBuckets(merged, 0.99);
  return snap;
}

SloTracker::SloTracker(SloOptions options, int minutes) : options_(options) {
  if (minutes < 5) minutes = 5;
  if (!(options_.objective > 0.0) || options_.objective >= 1.0) {
    options_.objective = 0.999;
  }
  epoch_ = std::chrono::steady_clock::now();
  minutes_.resize(static_cast<size_t>(minutes));
}

double SloTracker::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void SloTracker::RecordAt(double now_seconds, bool ok, double latency_ms) {
  if (now_seconds < 0.0) now_seconds = 0.0;
  const int64_t epoch = static_cast<int64_t>(std::floor(now_seconds / 60.0));
  const bool bad = !ok || latency_ms > options_.latency_threshold_ms;
  std::lock_guard<std::mutex> lock(mu_);
  Minute& minute =
      minutes_[static_cast<size_t>(epoch % static_cast<int64_t>(minutes_.size()))];
  if (minute.epoch != epoch) {
    minute.epoch = epoch;
    minute.total = 0;
    minute.bad = 0;
  }
  ++minute.total;
  if (bad) ++minute.bad;
}

SloTracker::Report SloTracker::ReportAt(double now_seconds) const {
  if (now_seconds < 0.0) now_seconds = 0.0;
  const int64_t current = static_cast<int64_t>(std::floor(now_seconds / 60.0));
  const int64_t window = static_cast<int64_t>(minutes_.size());
  Report report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Minute& minute : minutes_) {
      if (minute.epoch < 0 || minute.epoch + window <= current) continue;
      report.total_1h += minute.total;
      report.bad_1h += minute.bad;
      if (minute.epoch + 5 > current) {
        report.total_5m += minute.total;
        report.bad_5m += minute.bad;
      }
    }
  }
  const double budget = 1.0 - options_.objective;
  if (report.total_5m > 0) {
    report.bad_fraction_5m = static_cast<double>(report.bad_5m) /
                             static_cast<double>(report.total_5m);
    report.burn_5m = report.bad_fraction_5m / budget;
  }
  if (report.total_1h > 0) {
    report.bad_fraction_1h = static_cast<double>(report.bad_1h) /
                             static_cast<double>(report.total_1h);
    report.burn_1h = report.bad_fraction_1h / budget;
  }
  report.budget_remaining_1h =
      std::clamp(1.0 - report.burn_1h, 0.0, 1.0);
  return report;
}

}  // namespace obs
}  // namespace ir2
