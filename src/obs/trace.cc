#include "obs/trace.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ir2 {
namespace obs {

namespace {

Counter* DroppedSpansCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "ir2_trace_dropped_spans_total",
      "Trace spans overwritten because a tracer ring was full");
  return counter;
}

}  // namespace

std::atomic<int> Tracer::enabled_{0};
std::atomic<Tracer*> Tracer::active_{nullptr};

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kHeapPop:
      return "heap_pop";
    case SpanKind::kNodeExpand:
      return "node_expand";
    case SpanKind::kSignatureTest:
      return "signature_test";
    case SpanKind::kObjectVerify:
      return "object_verify";
    case SpanKind::kDemandIoWait:
      return "demand_io_wait";
    case SpanKind::kPrefetchComplete:
      return "prefetch_complete";
    case SpanKind::kPostingListRead:
      return "posting_list_read";
    case SpanKind::kShardFanout:
      return "shard_fanout";
    case SpanKind::kShardMerge:
      return "shard_merge";
    case SpanKind::kResultCache:
      return "result_cache";
  }
  return "unknown";
}

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool& SpeculativeThreadFlag() {
  thread_local bool speculative = false;
  return speculative;
}

Tracer::Tracer(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 4096));
  // Register eagerly so /metrics shows the series at 0 before any drop.
  DroppedSpansCounter();
}

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - epoch_).count());
}

void Tracer::Record(SpanKind kind, uint64_t ts_us, uint64_t dur_us,
                    uint64_t arg) {
  TraceEvent event;
  event.kind = kind;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.arg = arg;
  event.tid = TraceThreadId();
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[next_] = event;
      next_ = (next_ + 1) % capacity_;
      overwrote = true;
    }
    ++recorded_;
  }
  if (overwrote) DroppedSpansCounter()->Add(1);
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  // Once the ring wrapped, `next_` is the oldest surviving event.
  for (size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return events;
}

std::string Tracer::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    if (i > 0) out += ",";
    out += "\n{\"name\":\"";
    out += SpanKindName(event.kind);
    out += "\",\"cat\":\"ir2\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(event.ts_us);
    out += ",\"dur\":";
    out += std::to_string(event.dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"args\":{\"id\":";
    out += std::to_string(event.arg);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

// Scopes are strictly nested and installed from one thread at a time
// (queries that trace install around their own execution), so the flag is
// a plain mirror of active_ != nullptr.
ScopedTracer::ScopedTracer(Tracer* tracer) {
  previous_ = Tracer::active_.exchange(tracer, std::memory_order_acq_rel);
  Tracer::enabled_.store(tracer != nullptr ? 1 : 0, std::memory_order_relaxed);
}

ScopedTracer::~ScopedTracer() {
  Tracer::active_.store(previous_, std::memory_order_release);
  Tracer::enabled_.store(previous_ != nullptr ? 1 : 0,
                         std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace ir2
