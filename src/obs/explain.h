#ifndef IR2TREE_OBS_EXPLAIN_H_
#define IR2TREE_OBS_EXPLAIN_H_

// Human-readable report rendering for Database::Explain. The obs layer
// only knows how to lay out titled sections of label/value rows or small
// column tables; core fills in the query-specific content (QueryStats,
// per-level pruning, pool hit ratios, DiskModel breakdown).

#include <string>
#include <vector>

namespace ir2 {
namespace obs {

struct ExplainSection {
  std::string title;
  // Empty -> rows are [label, value] pairs rendered as "label  value".
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  void AddRow(std::string label, std::string value);
  void AddRow(std::vector<std::string> cells);
};

struct ExplainReport {
  std::string title;
  std::vector<ExplainSection> sections;

  ExplainSection* AddSection(std::string title);
  // Fixed-width ASCII tables; numeric-looking cells right-aligned.
  std::string ToString() const;
};

// Formatting helpers shared by report builders.
std::string FormatCount(uint64_t value);
std::string FormatMs(double value);
// "hits/total (pct%)" hit-ratio cell; "-" when total is 0.
std::string FormatRatio(uint64_t hits, uint64_t total);

}  // namespace obs
}  // namespace ir2

#endif  // IR2TREE_OBS_EXPLAIN_H_
