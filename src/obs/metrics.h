#ifndef IR2TREE_OBS_METRICS_H_
#define IR2TREE_OBS_METRICS_H_

// Process-wide metrics: named counters, gauges, and log-bucketed
// histograms. Hot paths pay exactly one relaxed atomic add — counters and
// histograms accumulate into cache-line-padded cells sharded by thread so
// concurrent writers never contend on a line; snapshots sum the cells.
// Registries render as Prometheus text or a JSON snapshot, and a local
// registry (e.g. one per BatchExecutor worker) can be merged into the
// global one on drain. See docs/observability.md for the metric catalogue.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

namespace ir2 {
namespace obs {

// Number of accumulation cells per sharded metric. Threads hash onto a
// cell; collisions are correct (atomic adds), just slower.
inline constexpr size_t kMetricCells = 16;

namespace internal {

struct alignas(64) MetricCell {
  std::atomic<uint64_t> value{0};
};

// Stable small index for the calling thread, assigned on first use.
size_t ThisThreadCellIndex();

}  // namespace internal

// Monotonic counter. Add() is one relaxed fetch_add on this thread's cell.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[internal::ThisThreadCellIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  // Sum over all cells. Monotone but not a point-in-time cut of concurrent
  // writers (each cell is read once, relaxed).
  uint64_t Value() const;
  void Reset();

 private:
  internal::MetricCell cells_[kMetricCells];
};

// Last-writer-wins signed value (sizes, capacities, high-water marks).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-bucketed histogram of non-negative doubles. Buckets subdivide each
// octave [2^e, 2^(e+1)) into kSubBuckets linear sub-buckets, so relative
// quantization error is at most 1/kSubBuckets ≈ 12.5% before the linear
// interpolation Percentile() applies within the landing bucket. Record()
// is one relaxed fetch_add on the landing bucket (buckets are naturally
// spread across lines; the count/sum cells are thread-sharded).
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExponent = -20;  // < ~1e-6 clamps to bucket 0.
  static constexpr int kMaxExponent = 30;   // >= 2^30 clamps to the top.
  static constexpr int kNumBuckets =
      (kMaxExponent - kMinExponent) * kSubBuckets + 2;

  void Record(double value);

  uint64_t Count() const;
  double Sum() const;
  double Mean() const;
  // Interpolated value at `fraction` in [0, 1]; 0 when empty.
  double Percentile(double fraction) const;
  // The same estimator over an externally merged bucket array (size
  // kNumBuckets) — what WindowedHistogram uses for sliding-window
  // quantiles. The ranked value's bucket is found, then the rank's position
  // within it interpolates linearly between the bucket's bounds, so the
  // estimate always lies in (lower, upper] of the bucket the true value
  // landed in: relative error is bounded by the sub-bucket width
  // 1/kSubBuckets, and a bucket-boundary value is overestimated by at most
  // that width (pinned by obs_test; see docs/observability.md).
  static double PercentileFromBuckets(std::span<const uint64_t> buckets,
                                      double fraction);
  void Reset();

  // Inclusive lower bound of bucket `index` (0 is the underflow bucket
  // with lower bound 0; the last bucket is the overflow bucket).
  static double BucketLowerBound(int index);
  static int BucketFor(double value);
  uint64_t BucketCount(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  internal::MetricCell count_cells_[kMetricCells];
  // Sum sharded as bit-cast doubles would lose adds; a double CAS loop
  // would spin under contention. Per-cell atomic<double> fetch-add keeps
  // the one-atomic-op guarantee (C++20).
  struct alignas(64) SumCell {
    std::atomic<double> value{0.0};
  };
  SumCell sum_cells_[kMetricCells];
};

// Named metric registry. Get*() registers on first use and returns a
// pointer that stays valid for the registry's lifetime — callers cache it
// so steady state never takes the registry lock. Global() is the
// process-wide instance; local instances exist so per-worker registries
// can be merged into the global one on drain (MergeFrom).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help = "");

  // Spelled name of a labelled series: `name{key="value"}` (value is
  // escaped). Pass the result to GetCounter/GetGauge — the exporters group
  // series of one family (everything before '{') under a single HELP/TYPE
  // header, so per-tenant counters such as
  // ir2_server_admitted_total{tenant="alice"} scrape as one Prometheus
  // family. Labelled histograms are not supported (their _bucket series
  // would need the label merged into `le`).
  static std::string LabelledName(std::string_view name,
                                  std::string_view label_key,
                                  std::string_view label_value);

  // Prometheus text exposition (families sorted by name; histograms emit
  // cumulative non-empty buckets + _sum/_count).
  std::string RenderPrometheus() const;
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string RenderJson() const;

  // Folds `other`'s values into this registry (counters/histograms add,
  // gauges add — workers report disjoint contributions). Metrics missing
  // here are registered with `other`'s help text.
  void MergeFrom(const MetricsRegistry& other);
  // Zeroes every registered metric (metrics stay registered).
  void Reset();

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  // Ordered so rendering is deterministic without a sort.
  std::map<std::string, Entry, std::less<>> entries_;
};

// The hot-path metrics, registered once in Global() and cached here so
// instrumentation sites pay a function-local-static load + one atomic add.
struct CoreMetrics {
  Counter* pool_hits;
  Counter* pool_misses;
  Counter* pool_evictions;
  Counter* node_cache_hits;
  Counter* node_cache_misses;
  Counter* node_decodes;
  Counter* sched_runs;
  Counter* sched_blocks_fetched;
  Counter* sched_read_errors;
  Counter* nn_heap_pops;
  Counter* nn_nodes_expanded;
  Counter* signature_tests;
  Counter* signature_prunes;
  // KC-Tree entry tests and their prune attribution: the hot-word posting
  // bitmap (exact) vs the cold-tail superimposed signature (lossy). See
  // docs/performance.md, KC-Tree chapter.
  Counter* kctree_bitmap_tests;
  Counter* kctree_bitmap_prunes;
  Counter* kctree_signature_prunes;
  Counter* objects_verified;
  Counter* verification_false_positives;
  Counter* queries_total;
  // Cost-based planner decisions (one counter per winning algorithm; the
  // registry carries no label dimension, so the algorithm is in the name)
  // and hindsight mispredictions (observed cost exceeded a rejected
  // candidate's prediction). See docs/planner.md.
  Counter* plan_chosen_rtree;
  Counter* plan_chosen_iio;
  Counter* plan_chosen_ir2;
  Counter* plan_chosen_mir2;
  Counter* plan_chosen_kctree;
  Counter* plan_mispredict;
  Histogram* query_latency_ms;
  Histogram* query_sim_disk_ms;
  Histogram* query_demand_blocks;
};

const CoreMetrics& DefaultMetrics();

}  // namespace obs
}  // namespace ir2

#endif  // IR2TREE_OBS_METRICS_H_
