#ifndef IR2TREE_OBS_WINDOWED_H_
#define IR2TREE_OBS_WINDOWED_H_

// Time-windowed telemetry for the serving tier (docs/observability.md):
//
//   WindowedHistogram — a ring of per-interval Histogram bucket snapshots.
//   Record() lands in the current interval's slot; Snapshot() merges the
//   live slots' bucket arrays and computes sliding-window quantiles, so
//   /statusz can report p50/p95/p99 over the last 60 seconds instead of
//   the process lifetime the global registry histograms accumulate.
//
//   SloTracker — multi-window error-budget accounting against a configured
//   latency/availability SLO: a ring of per-minute {total, bad} buckets,
//   reported as 5-minute and 1-hour burn rates (bad fraction over the
//   window divided by the error budget 1 - objective). Burn rate 1.0 means
//   the budget is being spent exactly as fast as the objective allows;
//   a sustained 5m burn well above 1 is the classic page condition.
//
// Both classes take time as an explicit seconds-since-construction value
// in the *At spellings so tests can drive rotation deterministically; the
// plain spellings read the steady clock. Writers and readers are mutex-
// serialized — these sit on the per-request serving path (thousands of
// events per second), not the per-block hot path the sharded registry
// metrics are built for.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace ir2 {
namespace obs {

class WindowedHistogram {
 public:
  struct Options {
    // Window = slots × slot_seconds; the default covers the last 60s in
    // 10-second intervals.
    int slots = 6;
    double slot_seconds = 10.0;
  };

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double window_seconds = 0.0;  // Configured span the quantiles cover.
    double Mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  WindowedHistogram() : WindowedHistogram(Options()) {}
  explicit WindowedHistogram(Options options);
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Record(double value) { RecordAt(NowSeconds(), value); }
  void RecordAt(double now_seconds, double value);

  // Quantiles merged over every slot still inside the window at `now`.
  Snapshot Snap() const { return SnapAt(NowSeconds()); }
  Snapshot SnapAt(double now_seconds) const;

  double window_seconds() const {
    return static_cast<double>(options_.slots) * options_.slot_seconds;
  }

 private:
  struct Slot {
    int64_t epoch = -1;  // floor(t / slot_seconds) this slot holds; -1 idle.
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<uint64_t> buckets;  // Histogram::kNumBuckets wide.
  };

  double NowSeconds() const;

  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
};

struct SloOptions {
  // A request slower than this is "bad" even when it succeeded — the
  // latency half of the SLO.
  double latency_threshold_ms = 50.0;
  // Target fraction of good requests (availability + latency combined).
  // The error budget is 1 - objective.
  double objective = 0.999;
};

class SloTracker {
 public:
  struct Report {
    uint64_t total_5m = 0;
    uint64_t bad_5m = 0;
    uint64_t total_1h = 0;
    uint64_t bad_1h = 0;
    double bad_fraction_5m = 0.0;
    double bad_fraction_1h = 0.0;
    // bad_fraction / (1 - objective); 1.0 = spending the budget exactly at
    // the sustainable rate, >1 = burning it faster than the SLO allows.
    double burn_5m = 0.0;
    double burn_1h = 0.0;
    // 1 - burn_1h, clamped to [0, 1]: the share of the hour's budget left
    // at the current 1h bad fraction.
    double budget_remaining_1h = 1.0;
  };

  explicit SloTracker(SloOptions options = {}, int minutes = 60);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // `ok` is the request's availability verdict (false = error); a slow
  // success is bad too.
  void Record(bool ok, double latency_ms) {
    RecordAt(NowSeconds(), ok, latency_ms);
  }
  void RecordAt(double now_seconds, bool ok, double latency_ms);

  Report GetReport() const { return ReportAt(NowSeconds()); }
  Report ReportAt(double now_seconds) const;

  const SloOptions& options() const { return options_; }

 private:
  struct Minute {
    int64_t epoch = -1;
    uint64_t total = 0;
    uint64_t bad = 0;
  };

  double NowSeconds() const;

  SloOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Minute> minutes_;
};

}  // namespace obs
}  // namespace ir2

#endif  // IR2TREE_OBS_WINDOWED_H_
