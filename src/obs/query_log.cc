#include "obs/query_log.h"

#include <cstdio>

#include "common/hash.h"

namespace ir2 {
namespace obs {

namespace {

// Matches the registry exporters' double formatting so one parser serves
// every telemetry surface.
void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

void AppendString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

thread_local ScopedPlanAudit* g_plan_audit = nullptr;

}  // namespace

std::string QueryLogRecord::ToJson() const {
  std::string out = "{\"ts_ms\":" + std::to_string(ts_ms);
  out += ",\"ticket\":" + std::to_string(ticket);
  out += ",\"tenant\":";
  AppendString(&out, tenant);
  out += ",\"k\":" + std::to_string(k);
  out += ",\"keywords\":" + std::to_string(num_keywords);
  out += ",\"area\":";
  out += area ? "true" : "false";
  out += ",\"algo\":";
  AppendString(&out, algo);
  out += ",\"predicted_ms\":";
  AppendDouble(&out, predicted_ms);
  out += ",\"observed_ms\":";
  AppendDouble(&out, observed_ms);
  out += ",\"plans\":" + std::to_string(plans);
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"error\":";
  AppendString(&out, error);
  out += ",\"slow\":";
  out += slow ? "true" : "false";
  out += ",\"latency_ms\":";
  AppendDouble(&out, latency_ms);
  out += ",\"queue_ms\":";
  AppendDouble(&out, queue_ms);
  out += ",\"results\":" + std::to_string(results);
  out += ",\"objects_loaded\":" + std::to_string(stats.objects_loaded);
  out += ",\"false_positives\":" + std::to_string(stats.false_positives);
  out += ",\"nodes_visited\":" + std::to_string(stats.nodes_visited);
  out += ",\"entries_pruned\":" + std::to_string(stats.entries_pruned);
  out += ",\"demand_random_reads\":" +
         std::to_string(stats.demand_random_reads);
  out += ",\"demand_sequential_reads\":" +
         std::to_string(stats.demand_sequential_reads);
  out += ",\"speculative_random_reads\":" +
         std::to_string(stats.speculative_random_reads);
  out += ",\"speculative_sequential_reads\":" +
         std::to_string(stats.speculative_sequential_reads);
  out += ",\"simulated_disk_ms\":";
  AppendDouble(&out, stats.simulated_disk_ms);
  out += ",\"shards_queried\":" + std::to_string(stats.shards_queried);
  out += ",\"shards_pruned\":" + std::to_string(stats.shards_pruned);
  out += "}";
  return out;
}

QueryLog::QueryLog(QueryLogOptions options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.sample_rate < 0.0) options_.sample_rate = 0.0;
  if (options_.sample_rate > 1.0) options_.sample_rate = 1.0;
  ring_.reserve(options_.capacity < 4096 ? options_.capacity : 4096);
}

bool QueryLog::ShouldSample(uint64_t ticket) const {
  if (options_.sample_rate >= 1.0) return true;
  if (options_.sample_rate <= 0.0) return false;
  // Mix the ticket into a uniform 53-bit fraction; deterministic per
  // ticket, so a replay of the same admission stream samples identically.
  const uint64_t mixed = Mix64(ticket + 0x51700ddbeefULL);
  const double unit =
      static_cast<double>(mixed >> 11) * 0x1.0p-53;  // [0, 1).
  return unit < options_.sample_rate;
}

void QueryLog::Record(QueryLogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % options_.capacity;
  }
  ++recorded_;
}

std::vector<QueryLogRecord> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryLogRecord> records;
  records.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    records.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return records;
}

std::string QueryLog::ToJsonLines() const {
  std::string out;
  for (const QueryLogRecord& record : Snapshot()) {
    out += record.ToJson();
    out += "\n";
  }
  return out;
}

Status QueryLog::DrainToFile(const std::string& path) {
  const std::string lines = ToJsonLines();
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("query log: cannot open " + path);
  }
  const size_t written = std::fwrite(lines.data(), 1, lines.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != lines.size() || !closed) {
    return Status::IoError("query log: short write to " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  return Status::Ok();
}

uint64_t QueryLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t QueryLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

ScopedPlanAudit::ScopedPlanAudit() : previous_(g_plan_audit) {
  g_plan_audit = this;
}

ScopedPlanAudit::~ScopedPlanAudit() { g_plan_audit = previous_; }

void ScopedPlanAudit::Record(std::string_view algo, double predicted_ms,
                             double observed_ms) {
  ScopedPlanAudit* sink = g_plan_audit;
  if (sink == nullptr) return;
  sink->audit_.algo.assign(algo);
  sink->audit_.predicted_ms += predicted_ms;
  sink->audit_.observed_ms += observed_ms;
  ++sink->audit_.plans;
}

}  // namespace obs
}  // namespace ir2
