#ifndef IR2TREE_OBS_TRACE_H_
#define IR2TREE_OBS_TRACE_H_

// Per-query span tracing into a bounded ring buffer, emitted as Chrome
// trace-event JSON (chrome://tracing or https://ui.perfetto.dev). When no
// tracer is installed the hot-path cost is a single branch on a relaxed
// atomic flag — TraceSpan's constructor loads the flag and returns.
//
// Installation is process-wide (ScopedTracer), not thread-local, because
// spans are recorded on threads the query owner never sees: IoScheduler
// prefetch workers record kPrefetchComplete while the query thread is
// inside the traversal. RunQuery drains the schedulers before its caller
// uninstalls the tracer, so no worker records after the scope ends.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ir2 {
namespace obs {

enum class SpanKind : uint8_t {
  kQuery = 0,            // One top-k query end to end.
  kHeapPop,              // Incremental-NN priority queue pop.
  kNodeExpand,           // R-Tree node load + entry scan.
  kSignatureTest,        // Signature containment test on one entry.
  kObjectVerify,         // Object load + keyword containment check.
  kDemandIoWait,         // BufferPool miss waiting on the device.
  kPrefetchComplete,     // IoScheduler worker finished one coalesced run.
  kPostingListRead,      // IIO posting-list retrieval for one keyword.
  kShardFanout,          // One shard's leg of a scatter-gather query.
  kShardMerge,           // Cross-shard (distance, id) result merge.
  kResultCache,          // Semantic result-cache lookup (arg: 1 hit, 0 miss).
};
inline constexpr int kNumSpanKinds = 11;

const char* SpanKindName(SpanKind kind);

struct TraceEvent {
  uint64_t ts_us = 0;   // Start, microseconds since the tracer's epoch.
  uint64_t dur_us = 0;
  uint64_t arg = 0;     // Kind-specific: block/node id, object ref, count.
  uint32_t tid = 0;
  SpanKind kind = SpanKind::kQuery;
};

// Bounded ring of TraceEvents. Record() overwrites the oldest event when
// full and counts the overwritten events as dropped.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since this tracer was constructed (steady clock).
  uint64_t NowUs() const;
  void Record(SpanKind kind, uint64_t ts_us, uint64_t dur_us, uint64_t arg);

  size_t size() const;
  uint64_t dropped() const;
  void Clear();

  // Oldest-first copy of the buffered events.
  std::vector<TraceEvent> Events() const;
  // {"displayTimeUnit":"ms","traceEvents":[...]} with "ph":"X" complete
  // events — loadable by Perfetto as-is.
  std::string ToChromeTraceJson() const;

  // True iff some tracer is installed; one relaxed load, the only cost
  // instrumentation pays when tracing is off.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed) != 0;
  }
  static Tracer* Active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  friend class ScopedTracer;
  static std::atomic<int> enabled_;
  static std::atomic<Tracer*> active_;

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;        // Ring write position once full.
  uint64_t recorded_ = 0;  // Total Record() calls.
};

// Installs `tracer` as the process-wide active sink for its lifetime.
// Nestable; the previous tracer is restored on destruction.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
};

// Small per-thread id for trace events (dense, first-use order).
uint32_t TraceThreadId();

// Set (for the thread's lifetime) by IoScheduler workers: their pool
// reads are speculative, so BufferPool suppresses kDemandIoWait spans
// for them — the worker's own kPrefetchComplete span covers the time.
bool& SpeculativeThreadFlag();

// RAII span: captures the start on construction, records on destruction.
// All cost is behind the Enabled() branch.
class TraceSpan {
 public:
  explicit TraceSpan(SpanKind kind, uint64_t arg = 0, bool enabled = true) {
    if (!enabled || !Tracer::Enabled()) return;
    tracer_ = Tracer::Active();
    if (tracer_ == nullptr) return;
    kind_ = kind;
    arg_ = arg;
    start_us_ = tracer_->NowUs();
  }
  ~TraceSpan() {
    if (tracer_ == nullptr) return;
    tracer_->Record(kind_, start_us_, tracer_->NowUs() - start_us_, arg_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  uint64_t start_us_ = 0;
  uint64_t arg_ = 0;
  SpanKind kind_ = SpanKind::kQuery;
};

// Zero-duration event (heap pops and other points in time).
inline void TraceInstant(SpanKind kind, uint64_t arg = 0) {
  if (!Tracer::Enabled()) return;
  Tracer* tracer = Tracer::Active();
  if (tracer == nullptr) return;
  tracer->Record(kind, tracer->NowUs(), 0, arg);
}

}  // namespace obs
}  // namespace ir2

#endif  // IR2TREE_OBS_TRACE_H_
