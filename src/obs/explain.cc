#include "obs/explain.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>

namespace ir2 {
namespace obs {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty() || cell == "-") return !cell.empty();
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != 'x' && c != ' ' && c != '(' &&
        c != ')' && c != '/' && c != 'e') {
      return false;
    }
  }
  return true;
}

std::string Pad(const std::string& cell, size_t width, bool right_align) {
  if (cell.size() >= width) return cell;
  const std::string padding(width - cell.size(), ' ');
  return right_align ? padding + cell : cell + padding;
}

}  // namespace

void ExplainSection::AddRow(std::string label, std::string value) {
  rows.push_back({std::move(label), std::move(value)});
}

void ExplainSection::AddRow(std::vector<std::string> cells) {
  rows.push_back(std::move(cells));
}

ExplainSection* ExplainReport::AddSection(std::string title) {
  sections.emplace_back();
  sections.back().title = std::move(title);
  return &sections.back();
}

std::string ExplainReport::ToString() const {
  std::string out;
  out += title + "\n";
  out += std::string(title.size(), '=') + "\n";
  for (const ExplainSection& section : sections) {
    out += "\n" + section.title + "\n";
    out += std::string(section.title.size(), '-') + "\n";

    // Column widths over header + all rows.
    const size_t num_columns = std::max(
        section.columns.size(),
        section.rows.empty()
            ? size_t{0}
            : std::max_element(section.rows.begin(), section.rows.end(),
                               [](const auto& a, const auto& b) {
                                 return a.size() < b.size();
                               })
                  ->size());
    std::vector<size_t> widths(num_columns, 0);
    for (size_t c = 0; c < section.columns.size(); ++c) {
      widths[c] = std::max(widths[c], section.columns[c].size());
    }
    for (const auto& row : section.rows) {
      for (size_t c = 0; c < row.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }

    if (!section.columns.empty()) {
      std::string header;
      std::string rule;
      for (size_t c = 0; c < num_columns; ++c) {
        const std::string& name =
            c < section.columns.size() ? section.columns[c] : std::string();
        if (c > 0) {
          header += "  ";
          rule += "  ";
        }
        header += Pad(name, widths[c], c > 0);
        rule += std::string(widths[c], '-');
      }
      out += header + "\n" + rule + "\n";
    }
    for (const auto& row : section.rows) {
      std::string line;
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) line += "  ";
        line += Pad(row[c], widths[c], c > 0 && LooksNumeric(row[c]));
      }
      // Trailing spaces from left-aligned last cells are noise.
      while (!line.empty() && line.back() == ' ') line.pop_back();
      out += line + "\n";
    }
  }
  return out;
}

std::string FormatCount(uint64_t value) { return std::to_string(value); }

std::string FormatMs(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

std::string FormatRatio(uint64_t hits, uint64_t total) {
  if (total == 0) return "-";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%llu/%llu (%.1f%%)",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(total),
                100.0 * static_cast<double>(hits) / static_cast<double>(total));
  return buf;
}

}  // namespace obs
}  // namespace ir2
