#ifndef IR2TREE_OBS_QUERY_LOG_H_
#define IR2TREE_OBS_QUERY_LOG_H_

// Sampled structured query log (docs/observability.md, query-log chapter).
//
// The serving tier appends one QueryLogRecord per *captured* request to a
// bounded ring: head-sampled at QueryLogOptions::sample_rate by hashing the
// admission ticket (deterministic — the same ticket always samples the same
// way, so tests and replays agree), with slow-tail requests (latency over
// the SLO threshold) and errors always captured regardless of the sample
// coin. Records render as JSON lines with a fixed key order so the schema
// can be pinned byte-exactly; they drain via /querylogz or DrainToFile.
//
// This layer sits below core (obs depends only on common), so the record
// carries a flat QueryLogStats mirror of the interesting core::QueryStats
// fields instead of the struct itself; serving does the conversion.
//
// ScopedPlanAudit is the planner audit hook: Database::QueryAuto reports
// (chosen algorithm, predicted cost, observed cost) to a thread-local sink
// when one is installed, so the serving tier can attribute planner
// mispricing per logged query without threading a parameter through every
// query signature. Under a sharded scatter-gather each shard leg records
// once; the sink sums predictions/observations and counts the legs.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ir2 {
namespace obs {

// Flat mirror of the core QueryStats fields worth auditing per query.
struct QueryLogStats {
  uint64_t objects_loaded = 0;
  uint64_t false_positives = 0;
  uint64_t nodes_visited = 0;
  uint64_t entries_pruned = 0;
  uint64_t demand_random_reads = 0;
  uint64_t demand_sequential_reads = 0;
  uint64_t speculative_random_reads = 0;
  uint64_t speculative_sequential_reads = 0;
  double simulated_disk_ms = 0.0;
  uint64_t shards_queried = 0;
  uint64_t shards_pruned = 0;
};

struct QueryLogRecord {
  // Caller-supplied wall time (ms since Unix epoch) so goldens can pin the
  // serialization with fixed inputs.
  uint64_t ts_ms = 0;
  uint64_t ticket = 0;  // Admission ticket (also the sampling coin).
  std::string tenant;

  // Query shape.
  uint32_t k = 0;
  uint32_t num_keywords = 0;
  bool area = false;  // Region query (MINDIST to a rect) vs point query.

  // Planner audit (empty algo = the query ran without an audit sink or
  // with a forced algorithm). predicted/observed are DiskModel-priced ms,
  // summed over the audited shard legs (`plans` of them).
  std::string algo;
  double predicted_ms = 0.0;
  double observed_ms = 0.0;
  uint32_t plans = 0;

  // Outcome.
  bool ok = true;
  std::string error;  // Status message when !ok.
  bool slow = false;  // Captured because latency exceeded the SLO threshold.
  double latency_ms = 0.0;
  double queue_ms = 0.0;
  uint32_t results = 0;
  QueryLogStats stats;

  // One JSON object, no trailing newline, fixed key order (the schema the
  // golden test pins — see docs/observability.md before changing it).
  std::string ToJson() const;
};

struct QueryLogOptions {
  size_t capacity = 1024;  // Ring size; oldest captured records drop first.
  // Head-sampling rate in [0, 1] applied to ok-and-fast requests; slow or
  // failed requests are always captured.
  double sample_rate = 0.01;
  // Latency above this marks the record slow (mirrors SloOptions'
  // latency_threshold_ms; ServerLoop keeps them in sync).
  double slow_threshold_ms = 50.0;
};

class QueryLog {
 public:
  explicit QueryLog(QueryLogOptions options = {});
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  // Deterministic head-sampling coin for an admission ticket.
  bool ShouldSample(uint64_t ticket) const;

  // Appends unconditionally — the caller decides capture via
  // ShouldSample(ticket) || slow || !ok.
  void Record(QueryLogRecord record);

  // Captured records, oldest first.
  std::vector<QueryLogRecord> Snapshot() const;
  // One JSON object per line, oldest first, trailing newline per line.
  std::string ToJsonLines() const;
  // Appends ToJsonLines() to `path` and clears the ring on success.
  Status DrainToFile(const std::string& path);

  uint64_t recorded() const;  // Records ever accepted.
  uint64_t dropped() const;   // Accepted records later overwritten.
  const QueryLogOptions& options() const { return options_; }

 private:
  QueryLogOptions options_;
  mutable std::mutex mu_;
  std::vector<QueryLogRecord> ring_;
  size_t next_ = 0;
  uint64_t recorded_ = 0;
};

// Sums of what QueryAuto reported while the scope was installed on this
// thread.
struct PlanAudit {
  std::string algo;  // Last chosen algorithm's name.
  double predicted_ms = 0.0;
  double observed_ms = 0.0;
  uint32_t plans = 0;
};

// Installs this thread's plan-audit sink for its lifetime (scopes nest;
// the previous sink is restored on destruction). Cost when no scope is
// installed is one thread_local load in QueryAuto.
class ScopedPlanAudit {
 public:
  ScopedPlanAudit();
  ~ScopedPlanAudit();
  ScopedPlanAudit(const ScopedPlanAudit&) = delete;
  ScopedPlanAudit& operator=(const ScopedPlanAudit&) = delete;

  const PlanAudit& audit() const { return audit_; }

  // Called by Database::QueryAuto after executing a plan; no-op when the
  // calling thread has no installed scope.
  static void Record(std::string_view algo, double predicted_ms,
                     double observed_ms);

 private:
  PlanAudit audit_;
  ScopedPlanAudit* previous_;
};

}  // namespace obs
}  // namespace ir2

#endif  // IR2TREE_OBS_QUERY_LOG_H_
