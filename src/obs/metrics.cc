#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <vector>

namespace ir2 {
namespace obs {
namespace internal {

size_t ThisThreadCellIndex() {
  // Dense per-thread indices (modulo kMetricCells) beat hashing the thread
  // id: the first kMetricCells threads are guaranteed collision-free.
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricCells;
  return index;
}

}  // namespace internal

namespace {

// Shortest %g form that round-trips typical metric values; matches what
// the benches print, so goldens stay readable.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

// Family of a (possibly labelled) series name: everything before '{'.
std::string_view FamilyOf(std::string_view name) {
  const size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

}  // namespace

std::string MetricsRegistry::LabelledName(std::string_view name,
                                          std::string_view label_key,
                                          std::string_view label_value) {
  std::string out(name);
  out += '{';
  out += label_key;
  out += "=\"";
  for (char c : label_value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"}";
  return out;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::MetricCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::MetricCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

int Histogram::BucketFor(double value) {
  if (!(value > 0)) return 0;  // Also catches NaN.
  int exponent;
  const double mantissa = std::frexp(value, &exponent);  // [0.5, 1).
  --exponent;                                            // value in [2^e, 2^(e+1)).
  if (exponent < kMinExponent) return 0;
  if (exponent >= kMaxExponent) return kNumBuckets - 1;
  const int sub = static_cast<int>((mantissa * 2.0 - 1.0) * kSubBuckets);
  return 1 + (exponent - kMinExponent) * kSubBuckets +
         (sub < kSubBuckets ? sub : kSubBuckets - 1);
}

double Histogram::BucketLowerBound(int index) {
  if (index <= 0) return 0;
  const int slot = index - 1;
  const int exponent = kMinExponent + slot / kSubBuckets;
  const int sub = slot % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exponent);
}

void Histogram::Record(double value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  const size_t cell = internal::ThisThreadCellIndex();
  count_cells_[cell].value.fetch_add(1, std::memory_order_relaxed);
  sum_cells_[cell].value.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const internal::MetricCell& cell : count_cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const SumCell& cell : sum_cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Percentile(double fraction) const {
  uint64_t counts[kNumBuckets];
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = BucketCount(i);
  }
  return PercentileFromBuckets(counts, fraction);
}

double Histogram::PercentileFromBuckets(std::span<const uint64_t> buckets,
                                        double fraction) {
  const int n = static_cast<int>(
      buckets.size() < static_cast<size_t>(kNumBuckets) ? buckets.size()
                                                        : kNumBuckets);
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += buckets[i];
  }
  if (total == 0) return 0;
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  // Rank of the requested order statistic, 1-based.
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(total - 1))) + 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < n; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lower = BucketLowerBound(i);
      const double upper = i + 1 < kNumBuckets ? BucketLowerBound(i + 1)
                                               : lower * 2.0;
      const double within =
          static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * within;
    }
    cumulative += in_bucket;
  }
  return BucketLowerBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  for (internal::MetricCell& cell : count_cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (SumCell& cell : sum_cells_) {
    cell.value.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[std::string(name)];
  if (entry.counter == nullptr) {
    entry.counter = std::make_unique<Counter>();
    if (entry.help.empty()) entry.help = std::string(help);
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[std::string(name)];
  if (entry.gauge == nullptr) {
    entry.gauge = std::make_unique<Gauge>();
    if (entry.help.empty()) entry.help = std::string(help);
  }
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[std::string(name)];
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>();
    if (entry.help.empty()) entry.help = std::string(help);
  }
  return entry.histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // Labelled series of one family sit adjacent in the sorted map (the bare
  // family name, if registered, sorts first since '{' > any metric-name
  // character), so HELP/TYPE are emitted once per family, on its first
  // series. Unlabelled-only registries render exactly as before.
  std::string last_counter_family;
  std::string last_gauge_family;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      const std::string family(FamilyOf(name));
      if (family != last_counter_family) {
        last_counter_family = family;
        if (!entry.help.empty()) {
          out += "# HELP " + family + " " + entry.help + "\n";
        }
        out += "# TYPE " + family + " counter\n";
      }
      out += name + " " + std::to_string(entry.counter->Value()) + "\n";
    }
    if (entry.gauge != nullptr) {
      const std::string family(FamilyOf(name));
      if (family != last_gauge_family) {
        last_gauge_family = family;
        if (!entry.help.empty()) {
          out += "# HELP " + family + " " + entry.help + "\n";
        }
        out += "# TYPE " + family + " gauge\n";
      }
      out += name + " " + std::to_string(entry.gauge->Value()) + "\n";
    }
    if (entry.histogram != nullptr) {
      if (!entry.help.empty()) out += "# HELP " + name + " " + entry.help + "\n";
      out += "# TYPE " + name + " histogram\n";
      const Histogram& h = *entry.histogram;
      uint64_t cumulative = 0;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        const uint64_t in_bucket = h.BucketCount(i);
        if (in_bucket == 0) continue;
        cumulative += in_bucket;
        // Upper bound of the landing bucket = lower bound of the next.
        const double upper = i + 1 < Histogram::kNumBuckets
                                 ? Histogram::BucketLowerBound(i + 1)
                                 : Histogram::BucketLowerBound(i) * 2.0;
        out += name + "_bucket{le=\"" + FormatDouble(upper) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
      out += name + "_sum " + FormatDouble(h.Sum()) + "\n";
      out += name + "_count " + std::to_string(h.Count()) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.counter == nullptr) continue;
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    out += std::to_string(entry.counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.gauge == nullptr) continue;
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    out += std::to_string(entry.gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.histogram == nullptr) continue;
    if (!first) out += ",";
    first = false;
    const Histogram& h = *entry.histogram;
    AppendJsonString(&out, name);
    out += ":{\"count\":" + std::to_string(h.Count());
    out += ",\"sum\":" + FormatDouble(h.Sum());
    out += ",\"p50\":" + FormatDouble(h.Percentile(0.50));
    out += ",\"p95\":" + FormatDouble(h.Percentile(0.95));
    out += ",\"p99\":" + FormatDouble(h.Percentile(0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t in_bucket = h.BucketCount(i);
      if (in_bucket == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      const double upper = i + 1 < Histogram::kNumBuckets
                               ? Histogram::BucketLowerBound(i + 1)
                               : Histogram::BucketLowerBound(i) * 2.0;
      out += "[" + FormatDouble(upper) + "," + std::to_string(in_bucket) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot `other` under its lock, then fold in under ours (never both:
  // Get* takes our lock and could be called re-entrantly by instrumented
  // allocator-free code, and lock order vs. other would be ambiguous).
  struct Flat {
    std::string name;
    std::string help;
    uint64_t counter = 0;
    bool has_counter = false;
    int64_t gauge = 0;
    bool has_gauge = false;
    std::vector<uint64_t> buckets;
    uint64_t hist_count = 0;
    double hist_sum = 0;
    bool has_histogram = false;
  };
  std::vector<Flat> flats;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, entry] : other.entries_) {
      Flat flat;
      flat.name = name;
      flat.help = entry.help;
      if (entry.counter != nullptr) {
        flat.has_counter = true;
        flat.counter = entry.counter->Value();
      }
      if (entry.gauge != nullptr) {
        flat.has_gauge = true;
        flat.gauge = entry.gauge->Value();
      }
      if (entry.histogram != nullptr) {
        flat.has_histogram = true;
        flat.buckets.resize(Histogram::kNumBuckets);
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          flat.buckets[i] = entry.histogram->BucketCount(i);
        }
        flat.hist_count = entry.histogram->Count();
        flat.hist_sum = entry.histogram->Sum();
      }
      flats.push_back(std::move(flat));
    }
  }
  for (const Flat& flat : flats) {
    if (flat.has_counter && flat.counter > 0) {
      GetCounter(flat.name, flat.help)->Add(flat.counter);
    }
    if (flat.has_gauge && flat.gauge != 0) {
      GetGauge(flat.name, flat.help)->Add(flat.gauge);
    }
    if (flat.has_histogram && flat.hist_count > 0) {
      Histogram* h = GetHistogram(flat.name, flat.help);
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (flat.buckets[i] > 0) {
          h->buckets_[i].fetch_add(flat.buckets[i], std::memory_order_relaxed);
        }
      }
      const size_t cell = internal::ThisThreadCellIndex();
      h->count_cells_[cell].value.fetch_add(flat.hist_count,
                                            std::memory_order_relaxed);
      h->sum_cells_[cell].value.fetch_add(flat.hist_sum,
                                          std::memory_order_relaxed);
    }
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Set(0);
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

const CoreMetrics& DefaultMetrics() {
  static const CoreMetrics* metrics = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* m = new CoreMetrics;
    m->pool_hits = r.GetCounter("ir2_pool_hits_total",
                                "BufferPool reads served from a shard");
    m->pool_misses = r.GetCounter("ir2_pool_misses_total",
                                  "BufferPool reads that went to the device");
    m->pool_evictions =
        r.GetCounter("ir2_pool_evictions_total", "BufferPool LRU evictions");
    m->node_cache_hits = r.GetCounter(
        "ir2_node_cache_hits_total", "Decoded-node cache hits (decode skipped)");
    m->node_cache_misses =
        r.GetCounter("ir2_node_cache_misses_total", "Decoded-node cache misses");
    m->node_decodes =
        r.GetCounter("ir2_node_decodes_total", "R-Tree node deserializations");
    m->sched_runs = r.GetCounter("ir2_sched_runs_total",
                                 "Coalesced prefetch runs issued by workers");
    m->sched_blocks_fetched = r.GetCounter(
        "ir2_sched_blocks_fetched_total", "Blocks read by prefetch workers");
    m->sched_read_errors = r.GetCounter("ir2_sched_read_errors_total",
                                        "Failed prefetch worker reads");
    m->nn_heap_pops = r.GetCounter("ir2_nn_heap_pops_total",
                                   "Incremental-NN priority queue pops");
    m->nn_nodes_expanded = r.GetCounter("ir2_nn_nodes_expanded_total",
                                        "R-Tree nodes expanded during NN");
    m->signature_tests = r.GetCounter("ir2_signature_tests_total",
                                      "Entry signature containment tests");
    m->signature_prunes = r.GetCounter(
        "ir2_signature_prunes_total", "Entries pruned by a signature test");
    m->kctree_bitmap_tests =
        r.GetCounter("ir2_kctree_bitmap_tests_total",
                     "KC-Tree entry containment tests (bitmap + signature)");
    m->kctree_bitmap_prunes =
        r.GetCounter("ir2_kctree_bitmap_prunes_total",
                     "KC-Tree entries pruned by the exact hot-word bitmap");
    m->kctree_signature_prunes =
        r.GetCounter("ir2_kctree_signature_prunes_total",
                     "KC-Tree entries pruned by the cold-tail signature");
    m->objects_verified = r.GetCounter(
        "ir2_objects_verified_total", "Objects loaded and checked for keywords");
    m->verification_false_positives =
        r.GetCounter("ir2_verification_false_positives_total",
                     "Verified objects that failed the keyword check");
    m->queries_total =
        r.GetCounter("ir2_queries_total", "Top-k queries executed");
    m->plan_chosen_rtree = r.GetCounter(
        "ir2_plan_chosen_rtree_total", "Auto plans won by the R-Tree baseline");
    m->plan_chosen_iio =
        r.GetCounter("ir2_plan_chosen_iio_total", "Auto plans won by IIO");
    m->plan_chosen_ir2 =
        r.GetCounter("ir2_plan_chosen_ir2_total", "Auto plans won by IR2");
    m->plan_chosen_mir2 =
        r.GetCounter("ir2_plan_chosen_mir2_total", "Auto plans won by MIR2");
    m->plan_chosen_kctree = r.GetCounter("ir2_plan_chosen_kctree_total",
                                         "Auto plans won by the KC-Tree");
    m->plan_mispredict = r.GetCounter(
        "ir2_plan_mispredict_total",
        "Executed auto plans whose observed cost exceeded a rejected "
        "candidate's prediction");
    m->query_latency_ms = r.GetHistogram("ir2_query_latency_ms",
                                         "Wall-clock query latency (ms)");
    m->query_sim_disk_ms = r.GetHistogram(
        "ir2_query_sim_disk_ms", "DiskModel-priced query time (ms)");
    m->query_demand_blocks = r.GetHistogram(
        "ir2_query_demand_blocks", "Demand block reads per query");
    return m;
  }();
  return *metrics;
}

}  // namespace obs
}  // namespace ir2
