#ifndef IR2TREE_GEO_POINT_H_
#define IR2TREE_GEO_POINT_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/logging.h"

namespace ir2 {

// A point in up-to-kMaxDims-dimensional space. Stored inline (no heap) since
// incremental NN keeps large priority queues of these. The paper's running
// examples are 2-d (latitude/longitude) but the method is dimension-agnostic.
class Point {
 public:
  static constexpr uint32_t kMaxDims = 8;

  Point() : dims_(0), coords_{} {}

  Point(double x, double y) : dims_(2), coords_{} {
    coords_[0] = x;
    coords_[1] = y;
  }

  explicit Point(std::span<const double> coords) : dims_(0), coords_{} {
    IR2_CHECK_LE(coords.size(), static_cast<size_t>(kMaxDims));
    dims_ = static_cast<uint32_t>(coords.size());
    for (uint32_t i = 0; i < dims_; ++i) coords_[i] = coords[i];
  }

  uint32_t dims() const { return dims_; }

  double operator[](uint32_t i) const {
    IR2_DCHECK(i < dims_);
    return coords_[i];
  }
  double& operator[](uint32_t i) {
    IR2_DCHECK(i < dims_);
    return coords_[i];
  }

  std::span<const double> coords() const {
    return std::span<const double>(coords_.data(), dims_);
  }

  friend bool operator==(const Point& a, const Point& b) {
    if (a.dims_ != b.dims_) return false;
    for (uint32_t i = 0; i < a.dims_; ++i) {
      if (a.coords_[i] != b.coords_[i]) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  uint32_t dims_;
  std::array<double, kMaxDims> coords_;
};

// Euclidean distance between two points of equal dimensionality.
double Distance(const Point& a, const Point& b);
double DistanceSquared(const Point& a, const Point& b);

}  // namespace ir2

#endif  // IR2TREE_GEO_POINT_H_
