#ifndef IR2TREE_GEO_RECT_H_
#define IR2TREE_GEO_RECT_H_

#include <string>

#include "geo/point.h"

namespace ir2 {

// Axis-aligned (minimum bounding) rectangle represented by its low and high
// corners — the paper's "southwest and northeast points". A point object is
// stored as the degenerate rectangle lo == hi.
class Rect {
 public:
  Rect() = default;

  Rect(const Point& lo, const Point& hi) : lo_(lo), hi_(hi) {
    IR2_DCHECK(lo.dims() == hi.dims());
#ifndef NDEBUG
    for (uint32_t i = 0; i < lo.dims(); ++i) IR2_DCHECK(lo[i] <= hi[i]);
#endif
  }

  // The degenerate rectangle covering exactly one point.
  static Rect ForPoint(const Point& p) { return Rect(p, p); }

  uint32_t dims() const { return lo_.dims(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  bool IsPoint() const { return lo_ == hi_; }

  // The point at the rectangle's center (used when a degenerate object rect
  // must be converted back to a point).
  Point Center() const;

  double Area() const;

  // Sum of edge lengths (useful for split heuristics).
  double Margin() const;

  bool Contains(const Point& p) const;
  bool Contains(const Rect& other) const;
  bool Intersects(const Rect& other) const;

  // Smallest rectangle covering both this and `other`.
  Rect UnionWith(const Rect& other) const;

  // Area(UnionWith(other)) - Area(): Guttman's enlargement criterion.
  double Enlargement(const Rect& other) const;

  // MINDIST: smallest Euclidean distance from `p` to any point of the
  // rectangle; 0 if `p` is inside. This is the Dist(p, MBR) of the paper's
  // incremental NN algorithm (Figure 3).
  double MinDist(const Point& p) const;
  double MinDistSquared(const Point& p) const;

  // Smallest distance between any point of this rectangle and any point of
  // `other`; 0 when they intersect. Supports the paper's area-target
  // queries ("a point p ... an area could be used instead").
  double MinDist(const Rect& other) const;
  double MinDistSquared(const Rect& other) const;

  // Area of the intersection with `other` (0 when disjoint). The overlap
  // measure of the R*-Tree split heuristic.
  double IntersectionArea(const Rect& other) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  std::string ToString() const;

 private:
  Point lo_;
  Point hi_;
};

}  // namespace ir2

#endif  // IR2TREE_GEO_RECT_H_
