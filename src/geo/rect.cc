#include "geo/rect.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ir2 {

Point Rect::Center() const {
  Point c = lo_;
  for (uint32_t i = 0; i < dims(); ++i) {
    c[i] = 0.5 * (lo_[i] + hi_[i]);
  }
  return c;
}

double Rect::Area() const {
  double area = 1.0;
  for (uint32_t i = 0; i < dims(); ++i) {
    area *= hi_[i] - lo_[i];
  }
  return area;
}

double Rect::Margin() const {
  double margin = 0.0;
  for (uint32_t i = 0; i < dims(); ++i) {
    margin += hi_[i] - lo_[i];
  }
  return margin;
}

bool Rect::Contains(const Point& p) const {
  IR2_DCHECK(p.dims() == dims());
  for (uint32_t i = 0; i < dims(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  IR2_DCHECK(other.dims() == dims());
  for (uint32_t i = 0; i < dims(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  IR2_DCHECK(other.dims() == dims());
  for (uint32_t i = 0; i < dims(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

Rect Rect::UnionWith(const Rect& other) const {
  IR2_DCHECK(other.dims() == dims());
  Point lo = lo_;
  Point hi = hi_;
  for (uint32_t i = 0; i < dims(); ++i) {
    lo[i] = std::min(lo[i], other.lo_[i]);
    hi[i] = std::max(hi[i], other.hi_[i]);
  }
  return Rect(lo, hi);
}

double Rect::Enlargement(const Rect& other) const {
  return UnionWith(other).Area() - Area();
}

double Rect::MinDistSquared(const Point& p) const {
  IR2_DCHECK(p.dims() == dims());
  double sum = 0.0;
  for (uint32_t i = 0; i < dims(); ++i) {
    double d = 0.0;
    if (p[i] < lo_[i]) {
      d = lo_[i] - p[i];
    } else if (p[i] > hi_[i]) {
      d = p[i] - hi_[i];
    }
    sum += d * d;
  }
  return sum;
}

double Rect::MinDist(const Point& p) const {
  return std::sqrt(MinDistSquared(p));
}

double Rect::MinDistSquared(const Rect& other) const {
  IR2_DCHECK(other.dims() == dims());
  double sum = 0.0;
  for (uint32_t i = 0; i < dims(); ++i) {
    double d = 0.0;
    if (other.hi_[i] < lo_[i]) {
      d = lo_[i] - other.hi_[i];
    } else if (other.lo_[i] > hi_[i]) {
      d = other.lo_[i] - hi_[i];
    }
    sum += d * d;
  }
  return sum;
}

double Rect::MinDist(const Rect& other) const {
  return std::sqrt(MinDistSquared(other));
}

double Rect::IntersectionArea(const Rect& other) const {
  IR2_DCHECK(other.dims() == dims());
  double area = 1.0;
  for (uint32_t i = 0; i < dims(); ++i) {
    double extent = std::min(hi_[i], other.hi_[i]) -
                    std::max(lo_[i], other.lo_[i]);
    if (extent <= 0.0) return 0.0;
    area *= extent;
  }
  return area;
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << "{lo=" << lo_.ToString() << ", hi=" << hi_.ToString() << "}";
  return os.str();
}

}  // namespace ir2
