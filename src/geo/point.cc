#include "geo/point.h"

#include <cmath>
#include <sstream>

namespace ir2 {

std::string Point::ToString() const {
  std::ostringstream os;
  os << "[";
  for (uint32_t i = 0; i < dims_; ++i) {
    if (i > 0) os << ", ";
    os << coords_[i];
  }
  os << "]";
  return os.str();
}

double DistanceSquared(const Point& a, const Point& b) {
  IR2_DCHECK(a.dims() == b.dims());
  double sum = 0.0;
  for (uint32_t i = 0; i < a.dims(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

}  // namespace ir2
